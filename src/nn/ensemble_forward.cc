#include "nn/ensemble_forward.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/simd.h"
#include "util/check.h"

// Batch-axis SIMD for the packed Linear op. Offline scoring passes hand
// InferBatch dozens of states at once; states are completely independent,
// so four of them can ride the four lanes of an AVX2 vector while every
// output element keeps its own scalar accumulation chain (k-ascending
// multiply THEN add - the target below deliberately omits FMA, whose
// fused rounding would change results). That makes the batched path
// bit-identical to the single-state kernel yet ~several times faster,
// which the single-state online path structurally cannot match (one
// state has no batch axis to vectorize over). Guarded by a runtime CPU
// check; non-x86 or pre-AVX2 hosts just use the scalar loop.
#if defined(__x86_64__) && defined(__GNUC__)
#define OSAP_ENSEMBLE_BATCH_SIMD 1
#endif

namespace osap::nn {

#ifdef OSAP_ENSEMBLE_BATCH_SIMD
namespace {

using V4 = double __attribute__((vector_size(32)));

/// One member's Linear layer over four states (x0..x3 -> y0..y3), output
/// columns tiled 8 wide so the 4x2 vector accumulators stay in registers
/// across the whole k loop. Each y element receives one addition per k,
/// ascending, then one bias addition - the exact chain of the scalar
/// kernel (whose 4-way k unroll is order-preserving), so results match
/// bit for bit.
__attribute__((target("avx2"))) void LinearBatch4Avx2(
    const double* x0, const double* x1, const double* x2, const double* x3,
    const double* w, const double* bias, std::size_t in, std::size_t out,
    bool fused_relu, double* y0, double* y1, double* y2, double* y3) {
  std::size_t j = 0;
  for (; j + 8 <= out; j += 8) {
    V4 acc00{}, acc01{}, acc10{}, acc11{};
    V4 acc20{}, acc21{}, acc30{}, acc31{};
    const double* wj = w + j;
    for (std::size_t k = 0; k < in; ++k) {
      V4 w0;
      V4 w1;
      std::memcpy(&w0, wj + k * out, sizeof(V4));
      std::memcpy(&w1, wj + k * out + 4, sizeof(V4));
      const double a0 = x0[k];
      const double a1 = x1[k];
      const double a2 = x2[k];
      const double a3 = x3[k];
      acc00 = acc00 + w0 * a0;
      acc01 = acc01 + w1 * a0;
      acc10 = acc10 + w0 * a1;
      acc11 = acc11 + w1 * a1;
      acc20 = acc20 + w0 * a2;
      acc21 = acc21 + w1 * a2;
      acc30 = acc30 + w0 * a3;
      acc31 = acc31 + w1 * a3;
    }
    V4 b0;
    V4 b1;
    std::memcpy(&b0, bias + j, sizeof(V4));
    std::memcpy(&b1, bias + j + 4, sizeof(V4));
    V4 lo[4] = {acc00 + b0, acc10 + b0, acc20 + b0, acc30 + b0};
    V4 hi[4] = {acc01 + b1, acc11 + b1, acc21 + b1, acc31 + b1};
    if (fused_relu) {
      for (V4& v : lo) v = (v > 0.0) ? v : V4{};
      for (V4& v : hi) v = (v > 0.0) ? v : V4{};
    }
    double* const ys[4] = {y0, y1, y2, y3};
    for (int s = 0; s < 4; ++s) {
      std::memcpy(ys[s] + j, &lo[s], sizeof(V4));
      std::memcpy(ys[s] + j + 4, &hi[s], sizeof(V4));
    }
  }
  // Remaining output columns: scalar, still one k-ascending addition per
  // element plus the final bias addition (loop nesting does not affect
  // any element's chain).
  for (; j < out; ++j) {
    const double* xs[4] = {x0, x1, x2, x3};
    double* const ys[4] = {y0, y1, y2, y3};
    for (int s = 0; s < 4; ++s) {
      double acc = 0.0;
      for (std::size_t k = 0; k < in; ++k) acc += xs[s][k] * w[k * out + j];
      acc += bias[j];
      ys[s][j] = fused_relu ? (acc > 0.0 ? acc : 0.0) : acc;
    }
  }
}

}  // namespace
#endif  // OSAP_ENSEMBLE_BATCH_SIMD

BatchedEnsemble::BatchedEnsemble(std::vector<const CompositeNet*> members) {
  OSAP_REQUIRE(!members.empty(), "BatchedEnsemble: empty ensemble");
  for (const CompositeNet* m : members) {
    OSAP_REQUIRE(m != nullptr, "BatchedEnsemble: null member");
  }
  member_count_ = members.size();
  const CompositeNet& first = *members.front();
  for (const CompositeNet* m : members) {
    OSAP_REQUIRE(m->BranchCount() == first.BranchCount() &&
                     m->InputSize() == first.InputSize() &&
                     m->OutputSize() == first.OutputSize(),
                 "BatchedEnsemble: members must share one topology");
  }
  input_size_ = first.InputSize();
  output_size_ = first.OutputSize();

  for (std::size_t b = 0; b < first.BranchCount(); ++b) {
    PackedBranch branch;
    branch.begin = first.BranchBegin(b);
    branch.width = first.BranchWidth(b);
    branch.out_width = first.BranchSeq(b).OutputSize();
    std::vector<const Sequential*> seqs;
    seqs.reserve(members.size());
    for (const CompositeNet* m : members) {
      OSAP_REQUIRE(m->BranchBegin(b) == branch.begin &&
                       m->BranchWidth(b) == branch.width,
                   "BatchedEnsemble: branch column ranges must match");
      seqs.push_back(&m->BranchSeq(b));
    }
    branch.ops = Pack(seqs);
    concat_width_ += branch.out_width;
    branches_.push_back(std::move(branch));
  }

  std::vector<const Sequential*> trunks;
  trunks.reserve(members.size());
  for (const CompositeNet* m : members) trunks.push_back(&m->trunk());
  trunk_ = Pack(trunks);
}

std::vector<BatchedEnsemble::PackedOp> BatchedEnsemble::Pack(
    const std::vector<const Sequential*>& seqs) {
  const Sequential& first = *seqs.front();
  for (const Sequential* s : seqs) {
    OSAP_REQUIRE(s->LayerCount() == first.LayerCount(),
                 "BatchedEnsemble: members must share layer counts");
  }
  const std::size_t k_members = seqs.size();
  std::vector<PackedOp> ops;
  ops.reserve(first.LayerCount());
  for (std::size_t li = 0; li < first.LayerCount(); ++li) {
    const Layer& proto = first.LayerAt(li);
    PackedOp op;
    op.in = proto.InputSize();
    op.out = proto.OutputSize();
    if (dynamic_cast<const Linear*>(&proto) != nullptr) {
      op.kind = PackedOp::Kind::kLinear;
      op.weights.ReshapeUninitialized(k_members * op.in, op.out);
      op.bias.ReshapeUninitialized(k_members, op.out);
      for (std::size_t m = 0; m < k_members; ++m) {
        const auto* member = dynamic_cast<const Linear*>(&seqs[m]->LayerAt(li));
        OSAP_REQUIRE(member != nullptr &&
                         member->InputSize() == op.in &&
                         member->OutputSize() == op.out,
                     "BatchedEnsemble: layer shape mismatch across members");
        std::copy(member->weight().value.values().begin(),
                  member->weight().value.values().end(),
                  op.weights.data() + m * op.in * op.out);
        std::copy(member->bias().value.values().begin(),
                  member->bias().value.values().end(),
                  op.bias.data() + m * op.out);
      }
    } else if (const auto* conv = dynamic_cast<const Conv1D*>(&proto)) {
      op.kind = PackedOp::Kind::kConv1d;
      op.in_channels = conv->in_channels();
      op.out_channels = conv->out_channels();
      op.kernel = conv->kernel();
      op.input_length = conv->input_length();
      const std::size_t w_rows = op.in_channels * op.kernel;
      op.weights.ReshapeUninitialized(k_members * op.out_channels, w_rows);
      op.bias.ReshapeUninitialized(k_members, op.out_channels);
      for (std::size_t m = 0; m < k_members; ++m) {
        const auto* member = dynamic_cast<const Conv1D*>(&seqs[m]->LayerAt(li));
        OSAP_REQUIRE(member != nullptr &&
                         member->in_channels() == op.in_channels &&
                         member->out_channels() == op.out_channels &&
                         member->kernel() == op.kernel &&
                         member->input_length() == op.input_length,
                     "BatchedEnsemble: conv shape mismatch across members");
        // Transpose (w_rows x out_channels) -> (out_channels x w_rows) so
        // the per-(oc, t) MAC loop reads taps contiguously.
        const double* src = member->weight().value.data();
        double* dst = op.weights.data() + m * op.out_channels * w_rows;
        for (std::size_t r = 0; r < w_rows; ++r) {
          for (std::size_t oc = 0; oc < op.out_channels; ++oc) {
            dst[oc * w_rows + r] = src[r * op.out_channels + oc];
          }
        }
        std::copy(member->bias().value.values().begin(),
                  member->bias().value.values().end(),
                  op.bias.data() + m * op.out_channels);
      }
    } else if (dynamic_cast<const ReLU*>(&proto) != nullptr) {
      op.kind = PackedOp::Kind::kRelu;
    } else if (dynamic_cast<const Tanh*>(&proto) != nullptr) {
      op.kind = PackedOp::Kind::kTanh;
    } else {
      OSAP_REQUIRE(false, "BatchedEnsemble: unsupported layer kind");
    }
    if (op.kind == PackedOp::Kind::kRelu ||
        op.kind == PackedOp::Kind::kTanh) {
      for (const Sequential* s : seqs) {
        OSAP_REQUIRE(s->LayerAt(li).Name() == proto.Name() &&
                         s->LayerAt(li).InputSize() == op.in,
                     "BatchedEnsemble: layer kind mismatch across members");
      }
    }
    // Fold a ReLU straight into the preceding weighted op: the clamp
    // happens after that op's final rounded addition either way, so the
    // fused result is bit-identical while skipping one full pass.
    if (op.kind == PackedOp::Kind::kRelu && !ops.empty() &&
        !ops.back().fused_relu &&
        (ops.back().kind == PackedOp::Kind::kLinear ||
         ops.back().kind == PackedOp::Kind::kConv1d)) {
      ops.back().fused_relu = true;
      continue;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void BatchedEnsemble::ApplyOp(const PackedOp& op, const double* x,
                              std::size_t x_stride, std::size_t x_batch,
                              double* y, std::size_t y_stride,
                              std::size_t y_batch, std::size_t batch) const {
  const std::size_t k_members = member_count_;
  switch (op.kind) {
    case PackedOp::Kind::kLinear: {
      // Mirrors Linear::Forward: k-ascending accumulation from zero, bias
      // added as one final rounded addition per output. The k loop is
      // unrolled by 4 exactly like Matrix::MatMulInto - four separate
      // ascending-k additions per output element - so the rounding order
      // (and result) is unchanged while each y element stays in a register
      // across four updates. A fused ReLU clamps after the bias addition,
      // exactly where the standalone ReLU pass would have run.
      const std::size_t in = op.in;
      const std::size_t out = op.out;
#ifdef OSAP_ENSEMBLE_BATCH_SIMD
      const bool simd = batch >= 4 && UseAvx2();
#endif
      for (std::size_t m = 0; m < k_members; ++m) {
        const double* w = op.weights.data() + m * in * out;
        const double* bias = op.bias.data() + m * out;
        std::size_t b = 0;
#ifdef OSAP_ENSEMBLE_BATCH_SIMD
        if (simd) {
          for (; b + 4 <= batch; b += 4) {
            const double* xr = x + m * x_stride + b * x_batch;
            double* yr = y + m * y_stride + b * y_batch;
            LinearBatch4Avx2(xr, xr + x_batch, xr + 2 * x_batch,
                             xr + 3 * x_batch, w, bias, in, out,
                             op.fused_relu, yr, yr + y_batch,
                             yr + 2 * y_batch, yr + 3 * y_batch);
          }
        }
#endif
        for (; b < batch; ++b) {
          const double* xr = x + m * x_stride + b * x_batch;
          double* yr = y + m * y_stride + b * y_batch;
          std::fill(yr, yr + out, 0.0);
          std::size_t k = 0;
          for (; k + 4 <= in; k += 4) {
            const double a0 = xr[k];
            const double a1 = xr[k + 1];
            const double a2 = xr[k + 2];
            const double a3 = xr[k + 3];
            const double* w0 = w + k * out;
            const double* w1 = w0 + out;
            const double* w2 = w1 + out;
            const double* w3 = w2 + out;
            for (std::size_t j = 0; j < out; ++j) {
              double acc = yr[j];
              acc += a0 * w0[j];
              acc += a1 * w1[j];
              acc += a2 * w2[j];
              acc += a3 * w3[j];
              yr[j] = acc;
            }
          }
          for (; k < in; ++k) {
            const double a = xr[k];
            const double* wr = w + k * out;
            for (std::size_t j = 0; j < out; ++j) yr[j] += a * wr[j];
          }
          if (op.fused_relu) {
            for (std::size_t j = 0; j < out; ++j) {
              const double v = yr[j] + bias[j];
              yr[j] = v > 0.0 ? v : 0.0;
            }
          } else {
            for (std::size_t j = 0; j < out; ++j) yr[j] += bias[j];
          }
        }
      }
      break;
    }
    case PackedOp::Kind::kConv1d: {
      // Mirrors Conv1D::Forward: acc starts at the bias, then ic- and
      // k-ascending multiply-adds per (oc, t) output element. The packed
      // weights are transposed so wk[] walks memory linearly.
      const std::size_t out_len = op.input_length - op.kernel + 1;
      const std::size_t w_rows = op.in_channels * op.kernel;
      for (std::size_t m = 0; m < k_members; ++m) {
        const double* w = op.weights.data() + m * op.out_channels * w_rows;
        const double* bias = op.bias.data() + m * op.out_channels;
        for (std::size_t b = 0; b < batch; ++b) {
          const double* xr = x + m * x_stride + b * x_batch;
          double* yr = y + m * y_stride + b * y_batch;
          for (std::size_t oc = 0; oc < op.out_channels; ++oc) {
            const double bb = bias[oc];
            const double* woc = w + oc * w_rows;
            for (std::size_t t = 0; t < out_len; ++t) {
              double acc = bb;
              for (std::size_t ic = 0; ic < op.in_channels; ++ic) {
                const double* xc = xr + ic * op.input_length + t;
                const double* wk = woc + ic * op.kernel;
                for (std::size_t k = 0; k < op.kernel; ++k) {
                  acc += xc[k] * wk[k];
                }
              }
              yr[oc * out_len + t] =
                  op.fused_relu ? (acc > 0.0 ? acc : 0.0) : acc;
            }
          }
        }
      }
      break;
    }
    case PackedOp::Kind::kRelu: {
      for (std::size_t m = 0; m < k_members; ++m) {
        for (std::size_t b = 0; b < batch; ++b) {
          const double* xr = x + m * x_stride + b * x_batch;
          double* yr = y + m * y_stride + b * y_batch;
          for (std::size_t j = 0; j < op.out; ++j) {
            yr[j] = xr[j] > 0.0 ? xr[j] : 0.0;
          }
        }
      }
      break;
    }
    case PackedOp::Kind::kTanh: {
      for (std::size_t m = 0; m < k_members; ++m) {
        for (std::size_t b = 0; b < batch; ++b) {
          const double* xr = x + m * x_stride + b * x_batch;
          double* yr = y + m * y_stride + b * y_batch;
          for (std::size_t j = 0; j < op.out; ++j) yr[j] = std::tanh(xr[j]);
        }
      }
      break;
    }
  }
}

void BatchedEnsemble::RunOps(const std::vector<PackedOp>& ops,
                             const double* x, std::size_t x_stride,
                             std::size_t x_batch, Matrix& buf_a,
                             Matrix& buf_b, double* out,
                             std::size_t out_stride, std::size_t out_batch,
                             std::size_t batch) const {
  OSAP_CHECK(!ops.empty());
  const double* in = x;
  std::size_t stride = x_stride;
  std::size_t in_batch = x_batch;
  Matrix* buf = &buf_a;
  for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
    buf->ReshapeUninitialized(batch * member_count_, ops[i].out);
    ApplyOp(ops[i], in, stride, in_batch, buf->data(), ops[i].out,
            member_count_ * ops[i].out, batch);
    in = buf->data();
    stride = ops[i].out;
    in_batch = member_count_ * ops[i].out;
    buf = (buf == &buf_a) ? &buf_b : &buf_a;
  }
  ApplyOp(ops.back(), in, stride, in_batch, out, out_stride, out_batch,
          batch);
}

const Matrix& BatchedEnsemble::Infer(std::span<const double> state,
                                     InferScratch& scratch) const {
  OSAP_REQUIRE(state.size() >= input_size_,
               "BatchedEnsemble: state too narrow");
  scratch.concat.ReshapeUninitialized(member_count_, concat_width_);
  std::size_t offset = 0;
  for (const PackedBranch& branch : branches_) {
    // All members read the same state columns, so the branch input is the
    // shared row with member-stride zero; members diverge after the first
    // weighted layer. Each branch's final op writes its member rows
    // directly into the concat columns (stride concat_width_) - no
    // per-branch copy.
    RunOps(branch.ops, state.data() + branch.begin,
           /*x_stride=*/0, /*x_batch=*/0, scratch.a, scratch.b,
           scratch.concat.data() + offset, concat_width_,
           /*out_batch=*/0, /*batch=*/1);
    offset += branch.out_width;
  }
  scratch.slice.ReshapeUninitialized(member_count_, output_size_);
  RunOps(trunk_, scratch.concat.data(), concat_width_, /*x_batch=*/0,
         scratch.a, scratch.b, scratch.slice.data(), output_size_,
         /*out_batch=*/0, /*batch=*/1);
  return scratch.slice;
}

const Matrix& BatchedEnsemble::InferBatch(const Matrix& states,
                                          InferScratch& scratch) const {
  OSAP_REQUIRE(states.cols() >= input_size_,
               "BatchedEnsemble: state rows too narrow");
  const std::size_t batch = states.rows();
  scratch.concat.ReshapeUninitialized(batch * member_count_, concat_width_);
  std::size_t offset = 0;
  for (const PackedBranch& branch : branches_) {
    // As in Infer: member stride zero shares each state's input row
    // across members; the batch stride walks the state rows. Branch
    // outputs land straight in their concat columns, one (batch*K)-row
    // block.
    RunOps(branch.ops, states.data() + branch.begin,
           /*x_stride=*/0, /*x_batch=*/states.cols(), scratch.a, scratch.b,
           scratch.concat.data() + offset, concat_width_,
           member_count_ * concat_width_, batch);
    offset += branch.out_width;
  }
  scratch.slice.ReshapeUninitialized(batch * member_count_, output_size_);
  RunOps(trunk_, scratch.concat.data(), concat_width_,
         member_count_ * concat_width_, scratch.a, scratch.b,
         scratch.slice.data(), output_size_, member_count_ * output_size_,
         batch);
  return scratch.slice;
}

}  // namespace osap::nn
