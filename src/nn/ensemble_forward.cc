#include "nn/ensemble_forward.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace osap::nn {

BatchedEnsemble::BatchedEnsemble(std::vector<const CompositeNet*> members) {
  OSAP_REQUIRE(!members.empty(), "BatchedEnsemble: empty ensemble");
  for (const CompositeNet* m : members) {
    OSAP_REQUIRE(m != nullptr, "BatchedEnsemble: null member");
  }
  member_count_ = members.size();
  const CompositeNet& first = *members.front();
  for (const CompositeNet* m : members) {
    OSAP_REQUIRE(m->BranchCount() == first.BranchCount() &&
                     m->InputSize() == first.InputSize() &&
                     m->OutputSize() == first.OutputSize(),
                 "BatchedEnsemble: members must share one topology");
  }
  input_size_ = first.InputSize();
  output_size_ = first.OutputSize();

  for (std::size_t b = 0; b < first.BranchCount(); ++b) {
    PackedBranch branch;
    branch.begin = first.BranchBegin(b);
    branch.width = first.BranchWidth(b);
    branch.out_width = first.BranchSeq(b).OutputSize();
    std::vector<const Sequential*> seqs;
    seqs.reserve(members.size());
    for (const CompositeNet* m : members) {
      OSAP_REQUIRE(m->BranchBegin(b) == branch.begin &&
                       m->BranchWidth(b) == branch.width,
                   "BatchedEnsemble: branch column ranges must match");
      seqs.push_back(&m->BranchSeq(b));
    }
    branch.ops = Pack(seqs);
    concat_width_ += branch.out_width;
    branches_.push_back(std::move(branch));
  }

  std::vector<const Sequential*> trunks;
  trunks.reserve(members.size());
  for (const CompositeNet* m : members) trunks.push_back(&m->trunk());
  trunk_ = Pack(trunks);
}

std::vector<BatchedEnsemble::PackedOp> BatchedEnsemble::Pack(
    const std::vector<const Sequential*>& seqs) {
  const Sequential& first = *seqs.front();
  for (const Sequential* s : seqs) {
    OSAP_REQUIRE(s->LayerCount() == first.LayerCount(),
                 "BatchedEnsemble: members must share layer counts");
  }
  const std::size_t k_members = seqs.size();
  std::vector<PackedOp> ops;
  ops.reserve(first.LayerCount());
  for (std::size_t li = 0; li < first.LayerCount(); ++li) {
    const Layer& proto = first.LayerAt(li);
    PackedOp op;
    op.in = proto.InputSize();
    op.out = proto.OutputSize();
    if (dynamic_cast<const Linear*>(&proto) != nullptr) {
      op.kind = PackedOp::Kind::kLinear;
      op.weights.ReshapeUninitialized(k_members * op.in, op.out);
      op.bias.ReshapeUninitialized(k_members, op.out);
      for (std::size_t m = 0; m < k_members; ++m) {
        const auto* member = dynamic_cast<const Linear*>(&seqs[m]->LayerAt(li));
        OSAP_REQUIRE(member != nullptr &&
                         member->InputSize() == op.in &&
                         member->OutputSize() == op.out,
                     "BatchedEnsemble: layer shape mismatch across members");
        std::copy(member->weight().value.values().begin(),
                  member->weight().value.values().end(),
                  op.weights.data() + m * op.in * op.out);
        std::copy(member->bias().value.values().begin(),
                  member->bias().value.values().end(),
                  op.bias.data() + m * op.out);
      }
    } else if (const auto* conv = dynamic_cast<const Conv1D*>(&proto)) {
      op.kind = PackedOp::Kind::kConv1d;
      op.in_channels = conv->in_channels();
      op.out_channels = conv->out_channels();
      op.kernel = conv->kernel();
      op.input_length = conv->input_length();
      const std::size_t w_rows = op.in_channels * op.kernel;
      op.weights.ReshapeUninitialized(k_members * w_rows, op.out_channels);
      op.bias.ReshapeUninitialized(k_members, op.out_channels);
      for (std::size_t m = 0; m < k_members; ++m) {
        const auto* member = dynamic_cast<const Conv1D*>(&seqs[m]->LayerAt(li));
        OSAP_REQUIRE(member != nullptr &&
                         member->in_channels() == op.in_channels &&
                         member->out_channels() == op.out_channels &&
                         member->kernel() == op.kernel &&
                         member->input_length() == op.input_length,
                     "BatchedEnsemble: conv shape mismatch across members");
        std::copy(member->weight().value.values().begin(),
                  member->weight().value.values().end(),
                  op.weights.data() + m * w_rows * op.out_channels);
        std::copy(member->bias().value.values().begin(),
                  member->bias().value.values().end(),
                  op.bias.data() + m * op.out_channels);
      }
    } else if (dynamic_cast<const ReLU*>(&proto) != nullptr) {
      op.kind = PackedOp::Kind::kRelu;
    } else if (dynamic_cast<const Tanh*>(&proto) != nullptr) {
      op.kind = PackedOp::Kind::kTanh;
    } else {
      OSAP_REQUIRE(false, "BatchedEnsemble: unsupported layer kind");
    }
    if (op.kind == PackedOp::Kind::kRelu ||
        op.kind == PackedOp::Kind::kTanh) {
      for (const Sequential* s : seqs) {
        OSAP_REQUIRE(s->LayerAt(li).Name() == proto.Name() &&
                         s->LayerAt(li).InputSize() == op.in,
                     "BatchedEnsemble: layer kind mismatch across members");
      }
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void BatchedEnsemble::ApplyOp(const PackedOp& op, const double* x,
                              std::size_t x_stride, Matrix& y) const {
  const std::size_t k_members = member_count_;
  y.ReshapeUninitialized(k_members, op.out);
  switch (op.kind) {
    case PackedOp::Kind::kLinear: {
      // Mirrors Linear::Forward: k-ascending accumulation from zero, bias
      // added as one final rounded addition per output. The k loop is
      // unrolled by 4 exactly like Matrix::MatMulInto - four separate
      // ascending-k additions per output element - so the rounding order
      // (and result) is unchanged while each y element stays in a register
      // across four updates.
      const std::size_t in = op.in;
      const std::size_t out = op.out;
      for (std::size_t m = 0; m < k_members; ++m) {
        const double* xr = x + m * x_stride;
        const double* w = op.weights.data() + m * in * out;
        const double* bias = op.bias.data() + m * out;
        double* yr = y.data() + m * out;
        std::fill(yr, yr + out, 0.0);
        std::size_t k = 0;
        for (; k + 4 <= in; k += 4) {
          const double a0 = xr[k];
          const double a1 = xr[k + 1];
          const double a2 = xr[k + 2];
          const double a3 = xr[k + 3];
          const double* w0 = w + k * out;
          const double* w1 = w0 + out;
          const double* w2 = w1 + out;
          const double* w3 = w2 + out;
          for (std::size_t j = 0; j < out; ++j) {
            double acc = yr[j];
            acc += a0 * w0[j];
            acc += a1 * w1[j];
            acc += a2 * w2[j];
            acc += a3 * w3[j];
            yr[j] = acc;
          }
        }
        for (; k < in; ++k) {
          const double a = xr[k];
          const double* wr = w + k * out;
          for (std::size_t j = 0; j < out; ++j) yr[j] += a * wr[j];
        }
        for (std::size_t j = 0; j < out; ++j) yr[j] += bias[j];
      }
      break;
    }
    case PackedOp::Kind::kConv1d: {
      // Mirrors Conv1D::Forward: acc starts at the bias, then ic- and
      // k-ascending multiply-adds per (oc, t) output element.
      const std::size_t out_len = op.input_length - op.kernel + 1;
      const std::size_t w_rows = op.in_channels * op.kernel;
      for (std::size_t m = 0; m < k_members; ++m) {
        const double* xr = x + m * x_stride;
        const double* w = op.weights.data() + m * w_rows * op.out_channels;
        const double* bias = op.bias.data() + m * op.out_channels;
        double* yr = y.data() + m * op.out;
        for (std::size_t oc = 0; oc < op.out_channels; ++oc) {
          const double b = bias[oc];
          for (std::size_t t = 0; t < out_len; ++t) {
            double acc = b;
            for (std::size_t ic = 0; ic < op.in_channels; ++ic) {
              const double* xc = xr + ic * op.input_length + t;
              for (std::size_t k = 0; k < op.kernel; ++k) {
                acc += xc[k] * w[(ic * op.kernel + k) * op.out_channels + oc];
              }
            }
            yr[oc * out_len + t] = acc;
          }
        }
      }
      break;
    }
    case PackedOp::Kind::kRelu: {
      for (std::size_t m = 0; m < k_members; ++m) {
        const double* xr = x + m * x_stride;
        double* yr = y.data() + m * op.out;
        for (std::size_t j = 0; j < op.out; ++j) {
          yr[j] = xr[j] > 0.0 ? xr[j] : 0.0;
        }
      }
      break;
    }
    case PackedOp::Kind::kTanh: {
      for (std::size_t m = 0; m < k_members; ++m) {
        const double* xr = x + m * x_stride;
        double* yr = y.data() + m * op.out;
        for (std::size_t j = 0; j < op.out; ++j) yr[j] = std::tanh(xr[j]);
      }
      break;
    }
  }
}

const Matrix& BatchedEnsemble::RunOps(const std::vector<PackedOp>& ops,
                                      const double* x, std::size_t x_stride,
                                      Matrix& buf_a, Matrix& buf_b) const {
  OSAP_CHECK(!ops.empty());
  const double* in = x;
  std::size_t stride = x_stride;
  Matrix* out = &buf_a;
  const Matrix* result = nullptr;
  for (const PackedOp& op : ops) {
    ApplyOp(op, in, stride, *out);
    result = out;
    in = out->data();
    stride = op.out;
    out = (out == &buf_a) ? &buf_b : &buf_a;
  }
  return *result;
}

const Matrix& BatchedEnsemble::Infer(std::span<const double> state,
                                     InferScratch& scratch) const {
  OSAP_REQUIRE(state.size() >= input_size_,
               "BatchedEnsemble: state too narrow");
  scratch.concat.ReshapeUninitialized(member_count_, concat_width_);
  std::size_t offset = 0;
  for (const PackedBranch& branch : branches_) {
    // All members read the same state columns, so the branch input is the
    // shared row with member-stride zero; members diverge after the first
    // weighted layer.
    const Matrix& out = RunOps(branch.ops, state.data() + branch.begin,
                               /*x_stride=*/0, scratch.a, scratch.b);
    for (std::size_t m = 0; m < member_count_; ++m) {
      const double* src = out.data() + m * branch.out_width;
      std::copy(src, src + branch.out_width,
                scratch.concat.data() + m * concat_width_ + offset);
    }
    offset += branch.out_width;
  }
  return RunOps(trunk_, scratch.concat.data(), concat_width_, scratch.a,
                scratch.b);
}

}  // namespace osap::nn
