// Layer containers: Sequential (a plain layer stack / MLP) and the generic
// branched CompositeNet used to express the Pensieve actor/critic topology
// (per-input-group branches whose outputs are concatenated into a trunk).
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace osap::nn {

/// Reusable buffers for the cache-free inference path. Keeping one of these
/// per call site (typically thread_local) makes repeated single-row
/// inference allocation-free after warm-up.
struct InferScratch {
  Matrix a;       // ping-pong activation buffer
  Matrix b;       // ping-pong activation buffer
  Matrix slice;   // branch input column slice
  Matrix concat;  // concatenated branch outputs feeding the trunk
};

/// A stack of layers applied in order. Owns its layers.
class Sequential {
 public:
  Sequential() = default;

  /// Appends a layer; its InputSize must match the current OutputSize.
  void Add(std::unique_ptr<Layer> layer);

  /// Convenience: appends Linear(in,out) followed by ReLU.
  void AddLinearReLU(std::size_t in, std::size_t out, Rng& rng);

  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& dy);

  /// Move-aware variants: interior activations are handed layer to layer by
  /// move, so layers that cache or rewrite their input avoid a copy each.
  /// Numerics are bit-identical to the const& overloads.
  Matrix Forward(Matrix&& x);
  Matrix Backward(Matrix&& dy);

  /// Cache-free forward: runs every layer's InferBatch, ping-ponging
  /// between the two scratch buffers, and returns a reference to whichever
  /// holds the final output. Const and thread-safe on a shared net (each
  /// caller supplies its own buffers); numerics match Forward bit for bit.
  /// `x` must not alias either buffer.
  const Matrix& Infer(const Matrix& x, Matrix& buf_a, Matrix& buf_b) const;

  /// All trainable parameters in layer order.
  std::vector<Param*> Params();

  std::size_t InputSize() const;
  std::size_t OutputSize() const;
  bool empty() const { return layers_.empty(); }
  std::size_t LayerCount() const { return layers_.size(); }
  const Layer& LayerAt(std::size_t i) const { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Builds an MLP: Linear+ReLU for each hidden width, then a final Linear to
/// `out` (no output activation; heads apply softmax / identity themselves).
Sequential MakeMlp(std::size_t in, const std::vector<std::size_t>& hidden,
                   std::size_t out, Rng& rng);

/// A branched network: the input row is split into column ranges, each fed
/// through its own Sequential branch; branch outputs are concatenated and
/// fed through a trunk. This is the Pensieve topology: scalar inputs go
/// through small dense branches, history vectors through Conv1D branches.
class CompositeNet {
 public:
  /// Adds a branch reading input columns [begin, begin+width).
  /// The branch Sequential's InputSize must equal width.
  void AddBranch(std::size_t begin, std::size_t width, Sequential branch);

  /// Sets the trunk; its InputSize must equal the sum of branch outputs.
  void SetTrunk(Sequential trunk);

  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& dy);

  /// Cache-free forward over branches + trunk using the caller's scratch
  /// buffers; const and thread-safe on a shared net. Returns a reference
  /// into `scratch`. Numerics match Forward bit for bit.
  const Matrix& Infer(const Matrix& x, InferScratch& scratch) const;

  std::vector<Param*> Params();

  /// Expected input width (max over branches of begin+width).
  std::size_t InputSize() const;
  std::size_t OutputSize() const;

  /// Read-only topology introspection (for batched ensemble packing).
  std::size_t BranchCount() const { return branches_.size(); }
  std::size_t BranchBegin(std::size_t i) const { return branches_[i].begin; }
  std::size_t BranchWidth(std::size_t i) const { return branches_[i].width; }
  const Sequential& BranchSeq(std::size_t i) const { return branches_[i].seq; }
  const Sequential& trunk() const { return trunk_; }

 private:
  struct Branch {
    std::size_t begin;
    std::size_t width;
    Sequential seq;
  };
  std::vector<Branch> branches_;
  Sequential trunk_;
  std::size_t cached_batch_rows_ = 0;
  std::size_t cached_input_cols_ = 0;
};

/// Zeroes the gradient of every parameter.
void ZeroGrads(std::vector<Param*> params);

/// Copies parameter values (not grads) from src to dst; shapes must match.
void CopyParams(const std::vector<Param*>& src,
                const std::vector<Param*>& dst);

/// Total number of scalar weights.
std::size_t ParamCount(const std::vector<Param*>& params);

}  // namespace osap::nn
