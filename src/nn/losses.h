// Loss functions and the softmax used by the actor head.
//
// PolicyGradientLoss implements the A2C objective the paper's Pensieve
// agents are trained with: -advantage * log pi(a|s) - entropy_coef * H(pi),
// averaged over the batch; MseLoss trains the critic / external value
// functions used by the U_V ensemble.
#pragma once

#include <span>
#include <vector>

#include "nn/matrix.h"

namespace osap::nn {

/// Numerically stable softmax of one logit vector.
std::vector<double> Softmax(std::span<const double> logits);

/// Allocation-free Softmax: writes into `out` (same length as `logits`,
/// which must not alias it). Bit-identical to Softmax.
void SoftmaxInto(std::span<const double> logits, std::span<double> out);

/// Row-wise softmax of a batch of logits.
Matrix SoftmaxRows(const Matrix& logits);

/// Result of a loss evaluation: scalar loss plus gradient w.r.t. the input.
struct LossResult {
  double loss = 0.0;
  Matrix grad;
};

/// A2C policy-gradient loss with entropy regularization.
///
/// For each batch row i with chosen action a_i and advantage A_i:
///   L_i = -A_i * log p_i[a_i] - entropy_coef * H(p_i),  p_i = softmax(z_i).
/// Returns mean over rows and dL/dz (same shape as logits). Advantages are
/// treated as constants (no gradient flows into them), matching standard
/// actor-critic practice.
LossResult PolicyGradientLoss(const Matrix& logits,
                              std::span<const int> actions,
                              std::span<const double> advantages,
                              double entropy_coef);

/// Mean-squared-error loss: mean over elements of 0.5*(pred-target)^2.
LossResult MseLoss(const Matrix& pred, const Matrix& target);

}  // namespace osap::nn
