// Binary (de)serialization of parameter sets.
//
// The experiment workbench trains every agent / ensemble member once and
// caches weights on disk so the figure benches are cheap to re-run; this is
// the file format it uses. The format is a magic tag, a parameter count,
// then per parameter (rows, cols, row-major doubles); LoadParams validates
// shapes against the live network so a stale cache fails loudly instead of
// producing garbage predictions. Files are host-endianness (cache files,
// not interchange).
#pragma once

#include <filesystem>
#include <istream>
#include <ostream>
#include <vector>

#include "nn/layers.h"

namespace osap::nn {

/// Writes all parameter values; throws std::runtime_error on stream failure.
void SaveParams(std::ostream& out, const std::vector<Param*>& params);

/// Reads parameter values into the given params; shapes must match exactly.
/// Throws std::runtime_error on format/shape mismatch.
void LoadParams(std::istream& in, const std::vector<Param*>& params);

/// File-path convenience wrappers (create parent directories on save).
void SaveParamsToFile(const std::filesystem::path& path,
                      const std::vector<Param*>& params);
void LoadParamsFromFile(const std::filesystem::path& path,
                        const std::vector<Param*>& params);

}  // namespace osap::nn
