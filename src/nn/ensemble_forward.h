// Fused batched forward for ensembles of identically-shaped CompositeNets.
//
// The paper's U_pi / U_V estimators query all 5 ensemble members on the
// same state every decision. Running 5 separate 1xN forward chains touches
// each member's weights through separate allocations with virtual dispatch
// per layer. BatchedEnsemble instead packs the members' weights per layer
// into one contiguous buffer at construction and evaluates the whole
// ensemble with one fused pass per layer shape: member m's activation is
// row m of a K-row matrix, and each packed layer streams once through the
// stacked weight blocks. The first layer of every branch reads the shared
// input row with member-stride zero, since all members see the same state.
//
// Numerics are bit-identical to calling each member's Forward/Infer
// individually: every kernel accumulates in the same order as the layer it
// replaces. Weights are snapshotted at construction - members must not be
// retrained afterwards (rebuild the BatchedEnsemble if they are).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/sequential.h"

namespace osap::nn {

class BatchedEnsemble {
 public:
  /// Packs the K members' weights. All members must share one topology
  /// (same branches, layer kinds, and shapes); duplicates are allowed.
  explicit BatchedEnsemble(std::vector<const CompositeNet*> members);

  /// Evaluates every member on one state. Returns a K x OutputSize matrix
  /// (member m's output in row m) referencing `scratch`; valid until the
  /// next Infer call with the same scratch.
  const Matrix& Infer(std::span<const double> state,
                      InferScratch& scratch) const;

  std::size_t MemberCount() const { return member_count_; }
  std::size_t InputSize() const { return input_size_; }
  std::size_t OutputSize() const { return output_size_; }

 private:
  struct PackedOp {
    enum class Kind { kLinear, kConv1d, kRelu, kTanh };
    Kind kind;
    std::size_t in = 0;   // features per member consumed
    std::size_t out = 0;  // features per member produced
    // Linear: weights = K stacked (in x out) blocks, bias = K x out.
    // Conv1D: weights = K stacked ((in_channels*kernel) x out_channels)
    // blocks, bias = K x out_channels.
    Matrix weights;
    Matrix bias;
    std::size_t in_channels = 0;
    std::size_t out_channels = 0;
    std::size_t kernel = 0;
    std::size_t input_length = 0;
  };

  struct PackedBranch {
    std::size_t begin = 0;
    std::size_t width = 0;
    std::size_t out_width = 0;
    std::vector<PackedOp> ops;
  };

  // Packs the same Sequential (a branch or the trunk) from every member.
  static std::vector<PackedOp> Pack(const std::vector<const Sequential*>& seqs);

  // Applies one op to activations at `x` (row stride `x_stride`; zero for
  // the shared input row) writing member rows into `y`.
  void ApplyOp(const PackedOp& op, const double* x, std::size_t x_stride,
               Matrix& y) const;

  // Runs a packed op chain; `x` has `x_stride` between member rows.
  const Matrix& RunOps(const std::vector<PackedOp>& ops, const double* x,
                       std::size_t x_stride, Matrix& buf_a,
                       Matrix& buf_b) const;

  std::size_t member_count_ = 0;
  std::size_t input_size_ = 0;
  std::size_t output_size_ = 0;
  std::size_t concat_width_ = 0;
  std::vector<PackedBranch> branches_;
  std::vector<PackedOp> trunk_;
};

}  // namespace osap::nn
