// Fused batched forward for ensembles of identically-shaped CompositeNets.
//
// The paper's U_pi / U_V estimators query all 5 ensemble members on the
// same state every decision. Running 5 separate 1xN forward chains touches
// each member's weights through separate allocations with virtual dispatch
// per layer. BatchedEnsemble instead packs the members' weights per layer
// into one contiguous buffer at construction and evaluates the whole
// ensemble with one fused pass per layer shape: member m's activation is
// row m of a K-row matrix, and each packed layer streams once through the
// stacked weight blocks. The first layer of every branch reads the shared
// input row with member-stride zero, since all members see the same state.
//
// Numerics are bit-identical to calling each member's Forward/Infer
// individually: every kernel accumulates in the same order as the layer it
// replaces. Weights are snapshotted at construction - members must not be
// retrained afterwards (rebuild the BatchedEnsemble if they are).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/sequential.h"

namespace osap::nn {

class BatchedEnsemble {
 public:
  /// Packs the K members' weights. All members must share one topology
  /// (same branches, layer kinds, and shapes); duplicates are allowed.
  explicit BatchedEnsemble(std::vector<const CompositeNet*> members);

  /// Evaluates every member on one state. Returns a K x OutputSize matrix
  /// (member m's output in row m) referencing `scratch`; valid until the
  /// next Infer call with the same scratch.
  const Matrix& Infer(std::span<const double> state,
                      InferScratch& scratch) const;

  /// Evaluates every member on each of the B states in `states` (a
  /// B x InputSize row-major matrix; wider rows use the leading InputSize
  /// columns). Returns a (B*K) x OutputSize matrix - state b / member m's
  /// output in row b*K + m - referencing `scratch`. Each row is
  /// bit-identical to Infer on that state alone: batching only hoists the
  /// per-member weight blocks across states (every output element keeps
  /// its own accumulation chain), which is the point - single-state
  /// inference re-streams every member's weights per call and is
  /// bandwidth-bound, so amortizing the weight traffic over B states is
  /// where offline scoring passes (replay calibration) win big.
  const Matrix& InferBatch(const Matrix& states, InferScratch& scratch) const;

  std::size_t MemberCount() const { return member_count_; }
  std::size_t InputSize() const { return input_size_; }
  std::size_t OutputSize() const { return output_size_; }

 private:
  struct PackedOp {
    enum class Kind { kLinear, kConv1d, kRelu, kTanh };
    Kind kind;
    std::size_t in = 0;   // features per member consumed
    std::size_t out = 0;  // features per member produced
    // Linear: weights = K stacked (in x out) blocks, bias = K x out.
    // Conv1D: weights transposed at pack time to K stacked
    // (out_channels x (in_channels*kernel)) blocks so the inner MAC loop
    // reads them contiguously (the member layers store
    // (in_channels*kernel) x out_channels, which strides by out_channels
    // between taps); bias = K x out_channels. The accumulation order is
    // unchanged, so results stay bit-identical.
    Matrix weights;
    Matrix bias;
    std::size_t in_channels = 0;
    std::size_t out_channels = 0;
    std::size_t kernel = 0;
    std::size_t input_length = 0;
    // A ReLU layer directly after a Linear/Conv1D is folded into that op
    // (clamp applied as each output is stored): one pass instead of two.
    bool fused_relu = false;
  };

  struct PackedBranch {
    std::size_t begin = 0;
    std::size_t width = 0;
    std::size_t out_width = 0;
    std::vector<PackedOp> ops;
  };

  // Packs the same Sequential (a branch or the trunk) from every member.
  static std::vector<PackedOp> Pack(const std::vector<const Sequential*>& seqs);

  // Applies one op to activations at `x`, writing member m of state b's
  // outputs at y + m * y_stride + b * y_batch. Member stride zero on x
  // means all members share the state's input row. The member loop is
  // outermost and the batch loop inside it, so member m's weight block
  // stays hot across all B states; the per-(state, member) kernel is the
  // single-state one verbatim, keeping every output element's
  // accumulation chain (and thus the rounding) unchanged.
  void ApplyOp(const PackedOp& op, const double* x, std::size_t x_stride,
               std::size_t x_batch, double* y, std::size_t y_stride,
               std::size_t y_batch, std::size_t batch) const;

  // Runs a packed op chain over a batch; `x` has `x_stride` between
  // member rows and `x_batch` between states. Intermediate ops ping-pong
  // through buf_a/buf_b ((batch*K)-row matrices, state b / member m at
  // row b*K + m); the final op writes straight to `out` with `out_stride`
  // between member rows and `out_batch` between states, which lets branch
  // outputs land in their concat columns without a copy.
  void RunOps(const std::vector<PackedOp>& ops, const double* x,
              std::size_t x_stride, std::size_t x_batch, Matrix& buf_a,
              Matrix& buf_b, double* out, std::size_t out_stride,
              std::size_t out_batch, std::size_t batch) const;

  std::size_t member_count_ = 0;
  std::size_t input_size_ = 0;
  std::size_t output_size_ = 0;
  std::size_t concat_width_ = 0;
  std::vector<PackedBranch> branches_;
  std::vector<PackedOp> trunk_;
};

}  // namespace osap::nn
