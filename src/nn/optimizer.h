// First-order optimizers over Param sets: Adam (used for all agent and
// value-function training, as in the Pensieve reference implementation) and
// plain SGD (used by tests and the gradient-checking harness).
//
// Both optimizers consume the gradients accumulated in each Param and zero
// them after stepping, so callers can accumulate gradients over a whole
// episode before a single update.
#pragma once

#include <vector>

#include "nn/layers.h"

namespace osap::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Global gradient-norm clip; <= 0 disables clipping.
  double clip_norm = 5.0;
};

/// Adam (Kingma & Ba, 2015) with optional global-norm gradient clipping.
class Adam {
 public:
  Adam(std::vector<Param*> params, AdamConfig config = {});

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  void set_learning_rate(double lr) { config_.learning_rate = lr; }
  double learning_rate() const { return config_.learning_rate; }
  std::size_t steps_taken() const { return t_; }

 private:
  std::vector<Param*> params_;
  AdamConfig config_;
  std::vector<Matrix> m_;  // first moments, aligned with params_
  std::vector<Matrix> v_;  // second moments
  std::size_t t_ = 0;
};

/// Plain gradient descent; used by unit tests where Adam's adaptivity would
/// obscure the quantity under test.
class Sgd {
 public:
  Sgd(std::vector<Param*> params, double learning_rate);

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

 private:
  std::vector<Param*> params_;
  double learning_rate_;
};

}  // namespace osap::nn
