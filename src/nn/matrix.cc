#include "nn/matrix.h"

#include <cmath>

#include "util/check.h"

namespace osap::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  OSAP_REQUIRE(data_.size() == rows * cols,
               "Matrix data size must equal rows*cols");
}

Matrix Matrix::RowVector(std::span<const double> values) {
  return Matrix(1, values.size(),
                std::vector<double>(values.begin(), values.end()));
}

double& Matrix::At(std::size_t r, std::size_t c) {
  OSAP_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(std::size_t r, std::size_t c) const {
  OSAP_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::Row(std::size_t r) const {
  OSAP_CHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::Row(std::size_t r) {
  OSAP_CHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

void Matrix::ReshapeUninitialized(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix Matrix::MatMul(const Matrix& other) const {
  Matrix out;
  MatMulInto(other, out);
  return out;
}

void Matrix::MatMulInto(const Matrix& other, Matrix& out) const {
  OSAP_REQUIRE(cols_ == other.rows_, "MatMul: inner dimensions must agree");
  OSAP_CHECK_MSG(&out != this && &out != &other,
                 "MatMulInto: out must not alias an operand");
  out.ReshapeUninitialized(rows_, other.cols_);
  out.SetZero();
  const std::size_t n = other.cols_;
  // Panel-blocked i-k-j kernel. The k loop is unrolled by 4 with the output
  // element kept in a register across the four updates; the updates stay in
  // ascending-k order as four separate additions, so the accumulation order
  // (and therefore every rounded result) is identical to the naive triple
  // loop. Dense weights make a zero-skip branch pure pipeline poison, so
  // there is none. Blocking over k keeps a panel of `other` rows hot in
  // cache while it is reused across the rows of `this`.
  constexpr std::size_t kPanel = 64;
  for (std::size_t kb = 0; kb < cols_; kb += kPanel) {
    const std::size_t k_end = std::min(cols_, kb + kPanel);
    for (std::size_t i = 0; i < rows_; ++i) {
      const double* a_row = data_.data() + i * cols_;
      double* o_row = out.data() + i * n;
      std::size_t k = kb;
      for (; k + 4 <= k_end; k += 4) {
        const double a0 = a_row[k];
        const double a1 = a_row[k + 1];
        const double a2 = a_row[k + 2];
        const double a3 = a_row[k + 3];
        const double* b0 = other.data_.data() + k * n;
        const double* b1 = b0 + n;
        const double* b2 = b1 + n;
        const double* b3 = b2 + n;
        for (std::size_t j = 0; j < n; ++j) {
          double acc = o_row[j];
          acc += a0 * b0[j];
          acc += a1 * b1[j];
          acc += a2 * b2[j];
          acc += a3 * b3[j];
          o_row[j] = acc;
        }
      }
      for (; k < k_end; ++k) {
        const double a = a_row[k];
        const double* b_row = other.data_.data() + k * n;
        for (std::size_t j = 0; j < n; ++j) {
          o_row[j] += a * b_row[j];
        }
      }
    }
  }
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Tiled transpose: both the read and the write pattern stay within a
  // kTile x kTile block, so neither side strides through a whole matrix
  // column per element on large batched matrices.
  constexpr std::size_t kTile = 32;
  for (std::size_t ib = 0; ib < rows_; ib += kTile) {
    const std::size_t i_end = std::min(rows_, ib + kTile);
    for (std::size_t jb = 0; jb < cols_; jb += kTile) {
      const std::size_t j_end = std::min(cols_, jb + kTile);
      for (std::size_t i = ib; i < i_end; ++i) {
        const double* src = data_.data() + i * cols_;
        for (std::size_t j = jb; j < j_end; ++j) {
          out.data_[j * rows_ + i] = src[j];
        }
      }
    }
  }
  return out;
}

Matrix& Matrix::AddInPlace(const Matrix& other) {
  OSAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "AddInPlace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::SubInPlace(const Matrix& other) {
  OSAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "SubInPlace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::MulInPlace(const Matrix& other) {
  OSAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "MulInPlace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::Scale(double factor) {
  for (double& v : data_) v *= factor;
  return *this;
}

Matrix& Matrix::AddRowBroadcast(const Matrix& row) {
  OSAP_REQUIRE(row.rows_ == 1 && row.cols_ == cols_,
               "AddRowBroadcast: expected a 1 x cols row vector");
  for (std::size_t i = 0; i < rows_; ++i) {
    double* r = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) r[j] += row.data_[j];
  }
  return *this;
}

Matrix Matrix::SumRows() const {
  Matrix out(1, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) out.data_[j] += r[j];
  }
  return out;
}

void Matrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

Matrix Matrix::ConcatCols(std::span<const Matrix> parts) {
  OSAP_REQUIRE(!parts.empty(), "ConcatCols requires >= 1 part");
  const std::size_t rows = parts.front().rows_;
  std::size_t cols = 0;
  for (const Matrix& p : parts) {
    OSAP_REQUIRE(p.rows_ == rows, "ConcatCols: row counts must match");
    cols += p.cols_;
  }
  Matrix out(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t offset = 0;
    for (const Matrix& p : parts) {
      const double* src = p.data_.data() + i * p.cols_;
      double* dst = out.data_.data() + i * cols + offset;
      std::copy(src, src + p.cols_, dst);
      offset += p.cols_;
    }
  }
  return out;
}

Matrix Matrix::SliceCols(std::size_t begin, std::size_t count) const {
  OSAP_REQUIRE(begin + count <= cols_, "SliceCols: out of range");
  Matrix out(rows_, count);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* src = data_.data() + i * cols_ + begin;
    std::copy(src, src + count, out.data_.data() + i * count);
  }
  return out;
}

}  // namespace osap::nn
