#include "nn/matrix.h"

#include <cmath>
#include <cstring>

#include "nn/simd.h"
#include "util/check.h"

// The matmul kernels below come in scalar and AVX2 flavors selected at
// runtime (nn::UseAvx2). Both flavors give every output element the exact
// same scalar accumulation chain - reduction strictly ascending, each term
// a multiply THEN a separate add (the target("avx2") attribute does not
// enable FMA, whose fused rounding would change results) - so the AVX2
// path is bit-identical to the scalar path and to the naive triple loop.
// AVX2 always vectorizes across a NON-reduction axis: four independent
// output elements ride the four lanes while each keeps its own chain.
#if defined(__x86_64__) && defined(__GNUC__)
#define OSAP_MATRIX_SIMD 1
#endif

namespace osap::nn {

namespace {

#ifdef OSAP_MATRIX_SIMD

using V4 = double __attribute__((vector_size(32)));

/// One output row times one k panel of `b` (n columns), k unrolled by 4
/// exactly like the scalar kernel in MatMulInto; lanes are output columns
/// j..j+3, so each output element's chain is untouched.
__attribute__((target("avx2"))) void MatMulRowPanelAvx2(
    const double* a_row, const double* b, std::size_t n, std::size_t kb,
    std::size_t k_end, double* o_row) {
  std::size_t k = kb;
  for (; k + 4 <= k_end; k += 4) {
    const double a0 = a_row[k];
    const double a1 = a_row[k + 1];
    const double a2 = a_row[k + 2];
    const double a3 = a_row[k + 3];
    const double* b0 = b + k * n;
    const double* b1 = b0 + n;
    const double* b2 = b1 + n;
    const double* b3 = b2 + n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      V4 acc;
      std::memcpy(&acc, o_row + j, sizeof(V4));
      V4 v;
      std::memcpy(&v, b0 + j, sizeof(V4));
      acc = acc + v * a0;
      std::memcpy(&v, b1 + j, sizeof(V4));
      acc = acc + v * a1;
      std::memcpy(&v, b2 + j, sizeof(V4));
      acc = acc + v * a2;
      std::memcpy(&v, b3 + j, sizeof(V4));
      acc = acc + v * a3;
      std::memcpy(o_row + j, &acc, sizeof(V4));
    }
    for (; j < n; ++j) {
      double acc = o_row[j];
      acc += a0 * b0[j];
      acc += a1 * b1[j];
      acc += a2 * b2[j];
      acc += a3 * b3[j];
      o_row[j] = acc;
    }
  }
  for (; k < k_end; ++k) {
    const double a = a_row[k];
    const double* b_row = b + k * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      V4 acc;
      V4 v;
      std::memcpy(&acc, o_row + j, sizeof(V4));
      std::memcpy(&v, b_row + j, sizeof(V4));
      acc = acc + v * a;
      std::memcpy(o_row + j, &acc, sizeof(V4));
    }
    for (; j < n; ++j) o_row[j] += a * b_row[j];
  }
}

/// 4x8 block of C (+)= A^T B: two V4 lanes of B columns b..b+7, rows are
/// A columns a..a+3, reduction ascending over the r rows shared by A and
/// B. The completed sums are written (or added, when accumulating) to C
/// only at the end, so accumulate mode adds each finished product element
/// in a single addition - the AddInPlace contract.
__attribute__((target("avx2"))) void MatMulTN4x8Avx2(
    const double* a_col, std::size_t p, const double* b_col, std::size_t q,
    std::size_t n, double* c, std::size_t c_stride, bool accumulate) {
  V4 acc00{};
  V4 acc01{};
  V4 acc10{};
  V4 acc11{};
  V4 acc20{};
  V4 acc21{};
  V4 acc30{};
  V4 acc31{};
  for (std::size_t r = 0; r < n; ++r) {
    V4 b0;
    V4 b1;
    std::memcpy(&b0, b_col + r * q, sizeof(V4));
    std::memcpy(&b1, b_col + r * q + 4, sizeof(V4));
    const double* ar = a_col + r * p;
    const double a0 = ar[0];
    const double a1 = ar[1];
    const double a2 = ar[2];
    const double a3 = ar[3];
    acc00 = acc00 + b0 * a0;
    acc01 = acc01 + b1 * a0;
    acc10 = acc10 + b0 * a1;
    acc11 = acc11 + b1 * a1;
    acc20 = acc20 + b0 * a2;
    acc21 = acc21 + b1 * a2;
    acc30 = acc30 + b0 * a3;
    acc31 = acc31 + b1 * a3;
  }
  const V4 lo[4] = {acc00, acc10, acc20, acc30};
  const V4 hi[4] = {acc01, acc11, acc21, acc31};
  for (int i = 0; i < 4; ++i) {
    double* crow = c + static_cast<std::size_t>(i) * c_stride;
    if (accumulate) {
      V4 cur;
      std::memcpy(&cur, crow, sizeof(V4));
      cur = cur + lo[i];
      std::memcpy(crow, &cur, sizeof(V4));
      std::memcpy(&cur, crow + 4, sizeof(V4));
      cur = cur + hi[i];
      std::memcpy(crow + 4, &cur, sizeof(V4));
    } else {
      std::memcpy(crow, &lo[i], sizeof(V4));
      std::memcpy(crow + 4, &hi[i], sizeof(V4));
    }
  }
}

/// 4x4 edge block of C (+)= A^T B (same chains as the 4x8 kernel).
__attribute__((target("avx2"))) void MatMulTN4x4Avx2(
    const double* a_col, std::size_t p, const double* b_col, std::size_t q,
    std::size_t n, double* c, std::size_t c_stride, bool accumulate) {
  V4 acc0{};
  V4 acc1{};
  V4 acc2{};
  V4 acc3{};
  for (std::size_t r = 0; r < n; ++r) {
    V4 bv;
    std::memcpy(&bv, b_col + r * q, sizeof(V4));
    const double* ar = a_col + r * p;
    acc0 = acc0 + bv * ar[0];
    acc1 = acc1 + bv * ar[1];
    acc2 = acc2 + bv * ar[2];
    acc3 = acc3 + bv * ar[3];
  }
  const V4 accs[4] = {acc0, acc1, acc2, acc3};
  for (int i = 0; i < 4; ++i) {
    double* crow = c + static_cast<std::size_t>(i) * c_stride;
    if (accumulate) {
      V4 cur;
      std::memcpy(&cur, crow, sizeof(V4));
      cur = cur + accs[i];
      std::memcpy(crow, &cur, sizeof(V4));
    } else {
      std::memcpy(crow, &accs[i], sizeof(V4));
    }
  }
}

/// 4x8 block of C = A B^T: two V4 lanes of B rows a..a+7 (columns of C),
/// rows are A rows r..r+3, reduction ascending over the shared k columns.
__attribute__((target("avx2"))) void MatMulNT4x8Avx2(
    const double* a_rows, std::size_t a_stride, const double* b_rows,
    std::size_t b_stride, std::size_t kk, double* c, std::size_t c_stride) {
  V4 acc00{};
  V4 acc01{};
  V4 acc10{};
  V4 acc11{};
  V4 acc20{};
  V4 acc21{};
  V4 acc30{};
  V4 acc31{};
  const double* a0 = a_rows;
  const double* a1 = a_rows + a_stride;
  const double* a2 = a1 + a_stride;
  const double* a3 = a2 + a_stride;
  const double* b0 = b_rows;
  const double* b1 = b_rows + b_stride;
  const double* b2 = b1 + b_stride;
  const double* b3 = b2 + b_stride;
  const double* b4 = b3 + b_stride;
  const double* b5 = b4 + b_stride;
  const double* b6 = b5 + b_stride;
  const double* b7 = b6 + b_stride;
  for (std::size_t k = 0; k < kk; ++k) {
    const V4 w0 = {b0[k], b1[k], b2[k], b3[k]};
    const V4 w1 = {b4[k], b5[k], b6[k], b7[k]};
    const double x0 = a0[k];
    const double x1 = a1[k];
    const double x2 = a2[k];
    const double x3 = a3[k];
    acc00 = acc00 + w0 * x0;
    acc01 = acc01 + w1 * x0;
    acc10 = acc10 + w0 * x1;
    acc11 = acc11 + w1 * x1;
    acc20 = acc20 + w0 * x2;
    acc21 = acc21 + w1 * x2;
    acc30 = acc30 + w0 * x3;
    acc31 = acc31 + w1 * x3;
  }
  const V4 lo[4] = {acc00, acc10, acc20, acc30};
  const V4 hi[4] = {acc01, acc11, acc21, acc31};
  for (int i = 0; i < 4; ++i) {
    double* crow = c + static_cast<std::size_t>(i) * c_stride;
    std::memcpy(crow, &lo[i], sizeof(V4));
    std::memcpy(crow + 4, &hi[i], sizeof(V4));
  }
}

/// 4x4 edge block of C = A B^T (same chains as the 4x8 kernel).
__attribute__((target("avx2"))) void MatMulNT4x4Avx2(
    const double* a_rows, std::size_t a_stride, const double* b_rows,
    std::size_t b_stride, std::size_t kk, double* c, std::size_t c_stride) {
  V4 acc0{};
  V4 acc1{};
  V4 acc2{};
  V4 acc3{};
  const double* a0 = a_rows;
  const double* a1 = a_rows + a_stride;
  const double* a2 = a1 + a_stride;
  const double* a3 = a2 + a_stride;
  const double* b0 = b_rows;
  const double* b1 = b_rows + b_stride;
  const double* b2 = b1 + b_stride;
  const double* b3 = b2 + b_stride;
  for (std::size_t k = 0; k < kk; ++k) {
    const V4 wv = {b0[k], b1[k], b2[k], b3[k]};
    acc0 = acc0 + wv * a0[k];
    acc1 = acc1 + wv * a1[k];
    acc2 = acc2 + wv * a2[k];
    acc3 = acc3 + wv * a3[k];
  }
  const V4 accs[4] = {acc0, acc1, acc2, acc3};
  for (int i = 0; i < 4; ++i) {
    std::memcpy(c + static_cast<std::size_t>(i) * c_stride, &accs[i],
                sizeof(V4));
  }
}

#endif  // OSAP_MATRIX_SIMD

/// Scalar twin of MatMulTN4x4Avx2: identical loop structure, identical
/// per-element chains.
void MatMulTN4x4Scalar(const double* a_col, std::size_t p,
                       const double* b_col, std::size_t q, std::size_t n,
                       double* c, std::size_t c_stride, bool accumulate) {
  double acc[4][4] = {};
  for (std::size_t r = 0; r < n; ++r) {
    const double* ar = a_col + r * p;
    const double* br = b_col + r * q;
    for (int i = 0; i < 4; ++i) {
      const double av = ar[i];
      acc[i][0] += av * br[0];
      acc[i][1] += av * br[1];
      acc[i][2] += av * br[2];
      acc[i][3] += av * br[3];
    }
  }
  for (int i = 0; i < 4; ++i) {
    double* crow = c + static_cast<std::size_t>(i) * c_stride;
    if (accumulate) {
      for (int j = 0; j < 4; ++j) crow[j] += acc[i][j];
    } else {
      for (int j = 0; j < 4; ++j) crow[j] = acc[i][j];
    }
  }
}

/// Scalar twin of MatMulNT4x4Avx2.
void MatMulNT4x4Scalar(const double* a_rows, std::size_t a_stride,
                       const double* b_rows, std::size_t b_stride,
                       std::size_t kk, double* c, std::size_t c_stride) {
  double acc[4][4] = {};
  const double* as[4] = {a_rows, a_rows + a_stride, a_rows + 2 * a_stride,
                         a_rows + 3 * a_stride};
  const double* bs[4] = {b_rows, b_rows + b_stride, b_rows + 2 * b_stride,
                         b_rows + 3 * b_stride};
  for (std::size_t k = 0; k < kk; ++k) {
    for (int i = 0; i < 4; ++i) {
      const double av = as[i][k];
      acc[i][0] += av * bs[0][k];
      acc[i][1] += av * bs[1][k];
      acc[i][2] += av * bs[2][k];
      acc[i][3] += av * bs[3][k];
    }
  }
  for (int i = 0; i < 4; ++i) {
    double* crow = c + static_cast<std::size_t>(i) * c_stride;
    for (int j = 0; j < 4; ++j) crow[j] = acc[i][j];
  }
}

/// Single C element of A^T B (edge rows/columns).
void MatMulTN1x1(const double* a_col, std::size_t p, const double* b_col,
                 std::size_t q, std::size_t n, double* c, bool accumulate) {
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) acc += a_col[r * p] * b_col[r * q];
  if (accumulate) {
    *c += acc;
  } else {
    *c = acc;
  }
}

/// Single C element of A B^T (edge rows/columns); both operand rows are
/// contiguous.
void MatMulNT1x1(const double* a_row, const double* b_row, std::size_t kk,
                 double* c) {
  double acc = 0.0;
  for (std::size_t k = 0; k < kk; ++k) acc += a_row[k] * b_row[k];
  *c = acc;
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  OSAP_REQUIRE(data_.size() == rows * cols,
               "Matrix data size must equal rows*cols");
}

Matrix Matrix::RowVector(std::span<const double> values) {
  return Matrix(1, values.size(),
                std::vector<double>(values.begin(), values.end()));
}

double& Matrix::At(std::size_t r, std::size_t c) {
  OSAP_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(std::size_t r, std::size_t c) const {
  OSAP_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::Row(std::size_t r) const {
  OSAP_CHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::Row(std::size_t r) {
  OSAP_CHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

void Matrix::ReshapeUninitialized(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix Matrix::MatMul(const Matrix& other) const {
  Matrix out;
  MatMulInto(other, out);
  return out;
}

void Matrix::MatMulInto(const Matrix& other, Matrix& out) const {
  OSAP_REQUIRE(cols_ == other.rows_, "MatMul: inner dimensions must agree");
  OSAP_CHECK_MSG(&out != this && &out != &other,
                 "MatMulInto: out must not alias an operand");
  out.ReshapeUninitialized(rows_, other.cols_);
  out.SetZero();
  const std::size_t n = other.cols_;
  // Panel-blocked i-k-j kernel. The k loop is unrolled by 4 with the output
  // element kept in a register across the four updates; the updates stay in
  // ascending-k order as four separate additions, so the accumulation order
  // (and therefore every rounded result) is identical to the naive triple
  // loop. Dense weights make a zero-skip branch pure pipeline poison, so
  // there is none. Blocking over k keeps a panel of `other` rows hot in
  // cache while it is reused across the rows of `this`.
  constexpr std::size_t kPanel = 64;
#ifdef OSAP_MATRIX_SIMD
  if (UseAvx2()) {
    // Same panel/unroll structure with the j loop vectorized: lanes are
    // output columns, so every element's k-ascending chain is unchanged.
    for (std::size_t kb = 0; kb < cols_; kb += kPanel) {
      const std::size_t k_end = std::min(cols_, kb + kPanel);
      for (std::size_t i = 0; i < rows_; ++i) {
        MatMulRowPanelAvx2(data_.data() + i * cols_, other.data_.data(), n,
                           kb, k_end, out.data() + i * n);
      }
    }
    return;
  }
#endif
  for (std::size_t kb = 0; kb < cols_; kb += kPanel) {
    const std::size_t k_end = std::min(cols_, kb + kPanel);
    for (std::size_t i = 0; i < rows_; ++i) {
      const double* a_row = data_.data() + i * cols_;
      double* o_row = out.data() + i * n;
      std::size_t k = kb;
      for (; k + 4 <= k_end; k += 4) {
        const double a0 = a_row[k];
        const double a1 = a_row[k + 1];
        const double a2 = a_row[k + 2];
        const double a3 = a_row[k + 3];
        const double* b0 = other.data_.data() + k * n;
        const double* b1 = b0 + n;
        const double* b2 = b1 + n;
        const double* b3 = b2 + n;
        for (std::size_t j = 0; j < n; ++j) {
          double acc = o_row[j];
          acc += a0 * b0[j];
          acc += a1 * b1[j];
          acc += a2 * b2[j];
          acc += a3 * b3[j];
          o_row[j] = acc;
        }
      }
      for (; k < k_end; ++k) {
        const double a = a_row[k];
        const double* b_row = other.data_.data() + k * n;
        for (std::size_t j = 0; j < n; ++j) {
          o_row[j] += a * b_row[j];
        }
      }
    }
  }
}

void Matrix::MatMulTNInto(const Matrix& other, Matrix& out,
                          bool accumulate) const {
  OSAP_REQUIRE(rows_ == other.rows_, "MatMulTN: row counts must agree");
  OSAP_CHECK_MSG(&out != this && &out != &other,
                 "MatMulTNInto: out must not alias an operand");
  const std::size_t p = cols_;
  const std::size_t q = other.cols_;
  const std::size_t n = rows_;
  if (accumulate) {
    OSAP_REQUIRE(out.rows_ == p && out.cols_ == q,
                 "MatMulTNInto: accumulate target shape mismatch");
  } else {
    out.ReshapeUninitialized(p, q);
  }
  const double* a = data_.data();
  const double* b = other.data_.data();
  const std::size_t p4 = p - p % 4;
  const std::size_t q4 = q - q % 4;
  // Block sizes are a scheduling choice only: every C element's chain is
  // the full ascending-r reduction regardless of which block computes it,
  // so the 8-wide AVX2 tiling and the 4-wide scalar tiling agree bit for
  // bit.
#ifdef OSAP_MATRIX_SIMD
  if (UseAvx2()) {
    const std::size_t q8 = q - q % 8;
    for (std::size_t i = 0; i < p4; i += 4) {
      std::size_t j = 0;
      for (; j < q8; j += 8) {
        MatMulTN4x8Avx2(a + i, p, b + j, q, n, out.data() + i * q + j, q,
                        accumulate);
      }
      for (; j < q4; j += 4) {
        MatMulTN4x4Avx2(a + i, p, b + j, q, n, out.data() + i * q + j, q,
                        accumulate);
      }
      for (; j < q; ++j) {
        for (std::size_t s = 0; s < 4; ++s) {
          MatMulTN1x1(a + i + s, p, b + j, q, n,
                      out.data() + (i + s) * q + j, accumulate);
        }
      }
    }
    for (std::size_t i = p4; i < p; ++i) {
      for (std::size_t j = 0; j < q; ++j) {
        MatMulTN1x1(a + i, p, b + j, q, n, out.data() + i * q + j,
                    accumulate);
      }
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < p4; i += 4) {
    for (std::size_t j = 0; j < q4; j += 4) {
      MatMulTN4x4Scalar(a + i, p, b + j, q, n, out.data() + i * q + j, q,
                        accumulate);
    }
    for (std::size_t j = q4; j < q; ++j) {
      for (std::size_t s = 0; s < 4; ++s) {
        MatMulTN1x1(a + i + s, p, b + j, q, n, out.data() + (i + s) * q + j,
                    accumulate);
      }
    }
  }
  for (std::size_t i = p4; i < p; ++i) {
    for (std::size_t j = 0; j < q; ++j) {
      MatMulTN1x1(a + i, p, b + j, q, n, out.data() + i * q + j, accumulate);
    }
  }
}

void Matrix::MatMulNTInto(const Matrix& other, Matrix& out) const {
  OSAP_REQUIRE(cols_ == other.cols_, "MatMulNT: column counts must agree");
  OSAP_CHECK_MSG(&out != this && &out != &other,
                 "MatMulNTInto: out must not alias an operand");
  const std::size_t n = rows_;
  const std::size_t p = other.rows_;
  const std::size_t kk = cols_;
  out.ReshapeUninitialized(n, p);
  const double* a = data_.data();
  const double* b = other.data_.data();
  const std::size_t n4 = n - n % 4;
  const std::size_t p4 = p - p % 4;
#ifdef OSAP_MATRIX_SIMD
  if (UseAvx2()) {
    const std::size_t p8 = p - p % 8;
    for (std::size_t r = 0; r < n4; r += 4) {
      std::size_t j = 0;
      for (; j < p8; j += 8) {
        MatMulNT4x8Avx2(a + r * kk, kk, b + j * kk, kk, kk,
                        out.data() + r * p + j, p);
      }
      for (; j < p4; j += 4) {
        MatMulNT4x4Avx2(a + r * kk, kk, b + j * kk, kk, kk,
                        out.data() + r * p + j, p);
      }
      for (; j < p; ++j) {
        for (std::size_t s = 0; s < 4; ++s) {
          MatMulNT1x1(a + (r + s) * kk, b + j * kk, kk,
                      out.data() + (r + s) * p + j);
        }
      }
    }
    for (std::size_t r = n4; r < n; ++r) {
      for (std::size_t j = 0; j < p; ++j) {
        MatMulNT1x1(a + r * kk, b + j * kk, kk, out.data() + r * p + j);
      }
    }
    return;
  }
#endif
  for (std::size_t r = 0; r < n4; r += 4) {
    for (std::size_t j = 0; j < p4; j += 4) {
      MatMulNT4x4Scalar(a + r * kk, kk, b + j * kk, kk, kk,
                        out.data() + r * p + j, p);
    }
    for (std::size_t j = p4; j < p; ++j) {
      for (std::size_t s = 0; s < 4; ++s) {
        MatMulNT1x1(a + (r + s) * kk, b + j * kk, kk,
                    out.data() + (r + s) * p + j);
      }
    }
  }
  for (std::size_t r = n4; r < n; ++r) {
    for (std::size_t j = 0; j < p; ++j) {
      MatMulNT1x1(a + r * kk, b + j * kk, kk, out.data() + r * p + j);
    }
  }
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  // Tiled transpose: both the read and the write pattern stay within a
  // kTile x kTile block, so neither side strides through a whole matrix
  // column per element on large batched matrices.
  constexpr std::size_t kTile = 32;
  for (std::size_t ib = 0; ib < rows_; ib += kTile) {
    const std::size_t i_end = std::min(rows_, ib + kTile);
    for (std::size_t jb = 0; jb < cols_; jb += kTile) {
      const std::size_t j_end = std::min(cols_, jb + kTile);
      for (std::size_t i = ib; i < i_end; ++i) {
        const double* src = data_.data() + i * cols_;
        for (std::size_t j = jb; j < j_end; ++j) {
          out.data_[j * rows_ + i] = src[j];
        }
      }
    }
  }
  return out;
}

Matrix& Matrix::AddInPlace(const Matrix& other) {
  OSAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "AddInPlace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::SubInPlace(const Matrix& other) {
  OSAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "SubInPlace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::MulInPlace(const Matrix& other) {
  OSAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "MulInPlace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::Scale(double factor) {
  for (double& v : data_) v *= factor;
  return *this;
}

Matrix& Matrix::AddRowBroadcast(const Matrix& row) {
  OSAP_REQUIRE(row.rows_ == 1 && row.cols_ == cols_,
               "AddRowBroadcast: expected a 1 x cols row vector");
  for (std::size_t i = 0; i < rows_; ++i) {
    double* r = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) r[j] += row.data_[j];
  }
  return *this;
}

Matrix Matrix::SumRows() const {
  Matrix out(1, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) out.data_[j] += r[j];
  }
  return out;
}

void Matrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

Matrix Matrix::ConcatCols(std::span<const Matrix> parts) {
  OSAP_REQUIRE(!parts.empty(), "ConcatCols requires >= 1 part");
  const std::size_t rows = parts.front().rows_;
  std::size_t cols = 0;
  for (const Matrix& p : parts) {
    OSAP_REQUIRE(p.rows_ == rows, "ConcatCols: row counts must match");
    cols += p.cols_;
  }
  Matrix out(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t offset = 0;
    for (const Matrix& p : parts) {
      const double* src = p.data_.data() + i * p.cols_;
      double* dst = out.data_.data() + i * cols + offset;
      std::copy(src, src + p.cols_, dst);
      offset += p.cols_;
    }
  }
  return out;
}

Matrix Matrix::SliceCols(std::size_t begin, std::size_t count) const {
  OSAP_REQUIRE(begin + count <= cols_, "SliceCols: out of range");
  Matrix out(rows_, count);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* src = data_.data() + i * cols_ + begin;
    std::copy(src, src + count, out.data_.data() + i * count);
  }
  return out;
}

}  // namespace osap::nn
