#include "nn/matrix.h"

#include <cmath>

#include "util/check.h"

namespace osap::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  OSAP_REQUIRE(data_.size() == rows * cols,
               "Matrix data size must equal rows*cols");
}

Matrix Matrix::RowVector(std::span<const double> values) {
  return Matrix(1, values.size(),
                std::vector<double>(values.begin(), values.end()));
}

double& Matrix::At(std::size_t r, std::size_t c) {
  OSAP_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(std::size_t r, std::size_t c) const {
  OSAP_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::Row(std::size_t r) const {
  OSAP_CHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::Row(std::size_t r) {
  OSAP_CHECK(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::MatMul(const Matrix& other) const {
  OSAP_REQUIRE(cols_ == other.rows_, "MatMul: inner dimensions must agree");
  Matrix out(rows_, other.cols_);
  // i-k-j loop order: streams through both operands row-major.
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a_row = data_.data() + i * cols_;
    double* o_row = out.data_.data() + i * other.cols_;
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.data_.data() + k * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        o_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out.data_[j * rows_ + i] = data_[i * cols_ + j];
    }
  }
  return out;
}

Matrix& Matrix::AddInPlace(const Matrix& other) {
  OSAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "AddInPlace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::SubInPlace(const Matrix& other) {
  OSAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "SubInPlace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::MulInPlace(const Matrix& other) {
  OSAP_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "MulInPlace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::Scale(double factor) {
  for (double& v : data_) v *= factor;
  return *this;
}

Matrix& Matrix::AddRowBroadcast(const Matrix& row) {
  OSAP_REQUIRE(row.rows_ == 1 && row.cols_ == cols_,
               "AddRowBroadcast: expected a 1 x cols row vector");
  for (std::size_t i = 0; i < rows_; ++i) {
    double* r = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) r[j] += row.data_[j];
  }
  return *this;
}

Matrix Matrix::SumRows() const {
  Matrix out(1, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) out.data_[j] += r[j];
  }
  return out;
}

void Matrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

double Matrix::SquaredNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

Matrix Matrix::ConcatCols(std::span<const Matrix> parts) {
  OSAP_REQUIRE(!parts.empty(), "ConcatCols requires >= 1 part");
  const std::size_t rows = parts.front().rows_;
  std::size_t cols = 0;
  for (const Matrix& p : parts) {
    OSAP_REQUIRE(p.rows_ == rows, "ConcatCols: row counts must match");
    cols += p.cols_;
  }
  Matrix out(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t offset = 0;
    for (const Matrix& p : parts) {
      const double* src = p.data_.data() + i * p.cols_;
      double* dst = out.data_.data() + i * cols + offset;
      std::copy(src, src + p.cols_, dst);
      offset += p.cols_;
    }
  }
  return out;
}

Matrix Matrix::SliceCols(std::size_t begin, std::size_t count) const {
  OSAP_REQUIRE(begin + count <= cols_, "SliceCols: out of range");
  Matrix out(rows_, count);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* src = data_.data() + i * cols_ + begin;
    std::copy(src, src + count, out.data_.data() + i * count);
  }
  return out;
}

}  // namespace osap::nn
