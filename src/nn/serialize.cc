#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace osap::nn {

namespace {

constexpr char kMagic[8] = {'O', 'S', 'A', 'P', 'N', 'N', '0', '1'};

void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t ReadU64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("LoadParams: truncated stream");
  return v;
}

}  // namespace

void SaveParams(std::ostream& out, const std::vector<Param*>& params) {
  out.write(kMagic, sizeof(kMagic));
  WriteU64(out, params.size());
  for (const Param* p : params) {
    WriteU64(out, p->value.rows());
    WriteU64(out, p->value.cols());
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(double)));
  }
  if (!out) throw std::runtime_error("SaveParams: stream write failed");
}

void LoadParams(std::istream& in, const std::vector<Param*>& params) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("LoadParams: bad magic (not an OSAP NN file)");
  }
  const std::uint64_t count = ReadU64(in);
  if (count != params.size()) {
    throw std::runtime_error("LoadParams: parameter count mismatch");
  }
  for (Param* p : params) {
    const std::uint64_t rows = ReadU64(in);
    const std::uint64_t cols = ReadU64(in);
    if (rows != p->value.rows() || cols != p->value.cols()) {
      throw std::runtime_error("LoadParams: parameter shape mismatch");
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(double)));
    if (!in) throw std::runtime_error("LoadParams: truncated stream");
  }
}

void SaveParamsToFile(const std::filesystem::path& path,
                      const std::vector<Param*>& params) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("SaveParamsToFile: cannot open " + path.string());
  }
  SaveParams(out, params);
}

void LoadParamsFromFile(const std::filesystem::path& path,
                        const std::vector<Param*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("LoadParamsFromFile: cannot open " +
                             path.string());
  }
  LoadParams(in, params);
}

}  // namespace osap::nn
