// Neural-network layers with manual backpropagation.
//
// The contract mirrors classic layer-wise autodiff: Forward(x) caches
// whatever the layer needs, Backward(dLoss/dOutput) accumulates parameter
// gradients (so multi-step episodes can sum gradients before one optimizer
// step) and returns dLoss/dInput. All layers operate on batches: each Matrix
// row is one example.
//
// Layers provided: Linear (fully connected), ReLU, Tanh, and Conv1D (valid
// 1-D convolution over channel-major rows) - the building blocks of the
// Pensieve actor/critic architecture (Mao et al., SIGCOMM '17).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"

namespace osap::nn {

/// A trainable parameter: value plus accumulated gradient of equal shape.
struct Param {
  Matrix value;
  Matrix grad;

  explicit Param(Matrix v) : value(std::move(v)), grad(value.rows(), value.cols()) {}
};

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes outputs for a batch and caches activations for Backward.
  virtual Matrix Forward(const Matrix& x) = 0;

  /// Move-aware forward: layers that cache their input (or can operate in
  /// place) take ownership of `x` instead of copying it, which removes the
  /// per-layer activation copies on the training hot path. Numerics are
  /// bit-identical to Forward(const Matrix&); the default falls back to it.
  virtual Matrix Forward(Matrix&& x) { return Forward(x); }

  /// Given dLoss/dOutput for the batch passed to the most recent Forward,
  /// accumulates parameter gradients and returns dLoss/dInput.
  virtual Matrix Backward(const Matrix& dy) = 0;

  /// Move-aware backward (same contract as Forward(Matrix&&)): activations
  /// may rewrite `dy` in place rather than copying it.
  virtual Matrix Backward(Matrix&& dy) { return Backward(dy); }

  /// Cache-free forward for the inference hot path: writes the batch
  /// outputs into `y` (pre-shaped to x.rows() x OutputSize()) without
  /// caching activations, so it is const and safe to call concurrently on
  /// a net shared across threads. Numerics match Forward bit for bit.
  /// `y` must not alias `x`.
  virtual void InferBatch(const Matrix& x, Matrix& y) const = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<Param*> Params() { return {}; }

  /// Layer type tag for serialization / debugging.
  virtual std::string Name() const = 0;

  /// Number of input / output features per example.
  virtual std::size_t InputSize() const = 0;
  virtual std::size_t OutputSize() const = 0;
};

/// Fully-connected layer: y = x W + b, W is in x out.
class Linear final : public Layer {
 public:
  /// Xavier-uniform initialization from the given RNG.
  Linear(std::size_t in, std::size_t out, Rng& rng);

  Matrix Forward(const Matrix& x) override;
  Matrix Forward(Matrix&& x) override;
  Matrix Backward(const Matrix& dy) override;
  void InferBatch(const Matrix& x, Matrix& y) const override;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Linear"; }
  std::size_t InputSize() const override { return weight_.value.rows(); }
  std::size_t OutputSize() const override { return weight_.value.cols(); }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  const Param& weight() const { return weight_; }
  const Param& bias() const { return bias_; }

 private:
  Param weight_;
  Param bias_;
  Matrix cached_input_;
};

/// Rectified linear activation.
class ReLU final : public Layer {
 public:
  explicit ReLU(std::size_t size) : size_(size) {}
  Matrix Forward(const Matrix& x) override;
  Matrix Forward(Matrix&& x) override;
  Matrix Backward(const Matrix& dy) override;
  Matrix Backward(Matrix&& dy) override;
  void InferBatch(const Matrix& x, Matrix& y) const override;
  std::string Name() const override { return "ReLU"; }
  std::size_t InputSize() const override { return size_; }
  std::size_t OutputSize() const override { return size_; }

 private:
  /// Records the zero mask (x <= 0, the exact Backward predicate) and
  /// clamps `v` in place. Caching the 1-byte mask instead of a full input
  /// copy halves the layer's memory traffic on the training path.
  void MaskAndClamp(std::vector<double>& v);

  std::size_t size_;
  std::vector<unsigned char> zeroed_;  // per-element "x <= 0" mask
  std::size_t cached_rows_ = 0;
  std::size_t cached_cols_ = 0;
};

/// Hyperbolic tangent activation.
class Tanh final : public Layer {
 public:
  explicit Tanh(std::size_t size) : size_(size) {}
  Matrix Forward(const Matrix& x) override;
  Matrix Forward(Matrix&& x) override;
  Matrix Backward(const Matrix& dy) override;
  Matrix Backward(Matrix&& dy) override;
  void InferBatch(const Matrix& x, Matrix& y) const override;
  std::string Name() const override { return "Tanh"; }
  std::size_t InputSize() const override { return size_; }
  std::size_t OutputSize() const override { return size_; }

 private:
  std::size_t size_;
  Matrix cached_output_;
};

/// Valid 1-D convolution over rows laid out channel-major:
/// [c0: t0..t(L-1)][c1: t0..t(L-1)]... Output layout is the same with
/// out_channels and length L - kernel + 1. This is the layer Pensieve uses
/// over its throughput/download-time/chunk-size history vectors.
class Conv1D final : public Layer {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t input_length, Rng& rng);

  Matrix Forward(const Matrix& x) override;
  Matrix Forward(Matrix&& x) override;
  Matrix Backward(const Matrix& dy) override;
  void InferBatch(const Matrix& x, Matrix& y) const override;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string Name() const override { return "Conv1D"; }
  std::size_t InputSize() const override { return in_channels_ * input_length_; }
  std::size_t OutputSize() const override { return out_channels_ * OutputLength(); }

  std::size_t OutputLength() const { return input_length_ - kernel_ + 1; }
  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t input_length() const { return input_length_; }
  const Param& weight() const { return weight_; }
  const Param& bias() const { return bias_; }

 private:
  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t input_length_;
  // weight_ is stored as a (in_channels*kernel) x out_channels matrix so the
  // convolution reduces to a matmul over unrolled patches.
  Param weight_;
  Param bias_;  // 1 x out_channels
  Matrix cached_input_;
};

}  // namespace osap::nn
