#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace osap::nn {

GradCheckResult CheckGradients(const std::vector<Param*>& params,
                               const std::function<double()>& loss_fn,
                               const std::function<void()>& backward_fn,
                               double epsilon) {
  OSAP_REQUIRE(epsilon > 0.0, "CheckGradients: epsilon must be > 0");
  backward_fn();
  // Snapshot analytic gradients before the finite-difference probing below
  // overwrites network caches.
  std::vector<std::vector<double>> analytic;
  analytic.reserve(params.size());
  for (const Param* p : params) analytic.push_back(p->grad.values());

  GradCheckResult result;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param& p = *params[pi];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const double saved = p.value.values()[j];
      p.value.values()[j] = saved + epsilon;
      const double loss_plus = loss_fn();
      p.value.values()[j] = saved - epsilon;
      const double loss_minus = loss_fn();
      p.value.values()[j] = saved;
      const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
      const double a = analytic[pi][j];
      const double abs_err = std::abs(a - numeric);
      const double rel_err =
          abs_err / std::max(1e-8, std::abs(a) + std::abs(numeric));
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      ++result.checked;
    }
  }
  return result;
}

}  // namespace osap::nn
