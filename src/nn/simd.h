// Runtime SIMD dispatch for the vectorized nn kernels (the batched
// ensemble inference path and the Matrix backward kernels).
//
// The actual dispatch logic lives in util/simd.h so that non-nn
// subsystems (the svm batched OC-SVM decision scan) can share the same
// CPU check, OSAP_NO_AVX2 escape hatch, and test override without a
// layering violation; this header re-exports the names into osap::nn for
// the existing nn call sites. See util/simd.h for the contract.
#pragma once

#include "util/simd.h"

namespace osap::nn {

using util::ForceSimdForTest;
using util::ResetSimdForTest;
using util::UseAvx2;

}  // namespace osap::nn
