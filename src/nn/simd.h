// Runtime SIMD dispatch shared by every vectorized nn kernel (the batched
// ensemble inference path and the Matrix backward kernels).
//
// All AVX2 kernels in this codebase are bit-identical to their scalar
// counterparts by construction (no FMA, every output element keeps its own
// scalar accumulation chain), so dispatch is purely a speed decision:
//   - the CPU must report AVX2, and
//   - the OSAP_NO_AVX2=1 environment variable must not be set (lets CI
//     machines with AVX2 exercise the scalar numerics, and is the
//     escape hatch if a host ever misreports support).
// Tests can additionally force either path in-process to prove the
// scalar/AVX2 equivalence without re-exec.
#pragma once

namespace osap::nn {

/// True when the AVX2 kernels should run: CPU support, no OSAP_NO_AVX2=1
/// in the environment, and no active test override to the contrary.
bool UseAvx2();

/// Test hook: forces dispatch to the scalar path (false) or the AVX2 path
/// (true). Forcing AVX2 on a CPU without it still yields the scalar path
/// (running the kernels would fault). Not thread-safe against concurrent
/// kernel launches; intended for single-threaded equivalence tests.
void ForceSimdForTest(bool use_avx2);

/// Restores environment/CPU-based dispatch after ForceSimdForTest.
void ResetSimdForTest();

}  // namespace osap::nn
