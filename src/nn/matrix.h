// Dense row-major 2-D matrix of doubles: the single tensor type underlying
// the from-scratch neural-network substrate (the paper's Pensieve agents are
// TensorFlow models; we re-implement the needed subset in C++, see
// DESIGN.md section 2).
//
// A Matrix with R rows is interpreted as a batch of R examples; a single
// example is a 1xN matrix. Shapes are validated on every operation - shape
// bugs throw instead of silently corrupting training.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace osap::nn {

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix initialized from row-major data (size must match).
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  /// 1 x values.size() row vector.
  static Matrix RowVector(std::span<const double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Element access with bounds checks in debug; hot loops use data().
  double& At(std::size_t r, std::size_t c);
  double At(std::size_t r, std::size_t c) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Raw row-major storage (for serialization and tests).
  const std::vector<double>& values() const { return data_; }
  std::vector<double>& values() { return data_; }

  /// One row as a span (no copy).
  std::span<const double> Row(std::size_t r) const;
  std::span<double> Row(std::size_t r);

  /// Reshapes in place to rows x cols, reusing the existing storage
  /// capacity; element values are unspecified afterwards. For scratch
  /// buffers on the inference hot path, where reallocation-free reuse
  /// matters.
  void ReshapeUninitialized(std::size_t rows, std::size_t cols);

  /// this * other; inner dimensions must agree.
  Matrix MatMul(const Matrix& other) const;

  /// this * other written into `out` (resized; no allocation when its
  /// capacity suffices). `out` must not alias either operand.
  void MatMulInto(const Matrix& other, Matrix& out) const;

  /// thisT * other - the backward pass's dW = x^T dy - without
  /// materializing the transpose. Row counts must agree. With
  /// `accumulate`, `out` must already be cols() x other.cols() and each
  /// completed product element is added to it in one addition:
  /// bit-identical to out.AddInPlace(Transposed().MatMul(other)).
  /// Runtime-dispatched AVX2 kernel (no FMA; every output element keeps
  /// the reference scalar accumulation chain).
  void MatMulTNInto(const Matrix& other, Matrix& out,
                    bool accumulate = false) const;

  /// this * otherT - the backward pass's dx = dy W^T - without
  /// materializing the transpose. Column counts must agree (the shared
  /// reduction axis). Bit-identical to MatMul(other.Transposed());
  /// runtime-dispatched AVX2 like MatMulTNInto.
  void MatMulNTInto(const Matrix& other, Matrix& out) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Element-wise operations; shapes must match exactly.
  Matrix& AddInPlace(const Matrix& other);
  Matrix& SubInPlace(const Matrix& other);
  Matrix& MulInPlace(const Matrix& other);  // Hadamard
  Matrix& Scale(double factor);

  /// Adds a 1 x cols row vector to every row (bias broadcast).
  Matrix& AddRowBroadcast(const Matrix& row);

  /// Sum over rows -> 1 x cols (bias gradient reduction).
  Matrix SumRows() const;

  /// Sets every element to zero.
  void SetZero();

  /// Sum of squares of all elements (for gradient-norm clipping).
  double SquaredNorm() const;

  /// Horizontal concatenation of equally-tall matrices.
  static Matrix ConcatCols(std::span<const Matrix> parts);

  /// Columns [begin, begin+count) as a copy.
  Matrix SliceCols(std::size_t begin, std::size_t count) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace osap::nn
