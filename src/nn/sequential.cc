#include "nn/sequential.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace osap::nn {

void Sequential::Add(std::unique_ptr<Layer> layer) {
  OSAP_REQUIRE(layer != nullptr, "Sequential::Add: null layer");
  if (!layers_.empty()) {
    OSAP_REQUIRE(layers_.back()->OutputSize() == layer->InputSize(),
                 "Sequential::Add: layer input width must match previous "
                 "layer output width");
  }
  layers_.push_back(std::move(layer));
}

void Sequential::AddLinearReLU(std::size_t in, std::size_t out, Rng& rng) {
  Add(std::make_unique<Linear>(in, out, rng));
  Add(std::make_unique<ReLU>(out));
}

Matrix Sequential::Forward(const Matrix& x) {
  OSAP_REQUIRE(!layers_.empty(), "Sequential::Forward: empty network");
  // The first layer reads the caller's matrix; every interior activation is
  // handed down by move so caching layers take ownership instead of copying.
  Matrix h = layers_.front()->Forward(x);
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(std::move(h));
  }
  return h;
}

Matrix Sequential::Forward(Matrix&& x) {
  OSAP_REQUIRE(!layers_.empty(), "Sequential::Forward: empty network");
  Matrix h = std::move(x);
  for (auto& layer : layers_) h = layer->Forward(std::move(h));
  return h;
}

Matrix Sequential::Backward(const Matrix& dy) {
  OSAP_REQUIRE(!layers_.empty(), "Sequential::Backward: empty network");
  Matrix g = layers_.back()->Backward(dy);
  for (std::size_t i = layers_.size() - 1; i-- > 0;) {
    g = layers_[i]->Backward(std::move(g));
  }
  return g;
}

Matrix Sequential::Backward(Matrix&& dy) {
  OSAP_REQUIRE(!layers_.empty(), "Sequential::Backward: empty network");
  Matrix g = std::move(dy);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(std::move(g));
  }
  return g;
}

const Matrix& Sequential::Infer(const Matrix& x, Matrix& buf_a,
                                Matrix& buf_b) const {
  OSAP_REQUIRE(!layers_.empty(), "Sequential::Infer: empty network");
  OSAP_CHECK_MSG(&x != &buf_a && &x != &buf_b,
                 "Sequential::Infer: x must not alias a scratch buffer");
  const Matrix* in = &x;
  Matrix* out = &buf_a;
  for (const auto& layer : layers_) {
    layer->InferBatch(*in, *out);
    in = out;
    out = (out == &buf_a) ? &buf_b : &buf_a;
  }
  return *in;
}

std::vector<Param*> Sequential::Params() {
  std::vector<Param*> params;
  for (auto& layer : layers_) {
    for (Param* p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::size_t Sequential::InputSize() const {
  OSAP_REQUIRE(!layers_.empty(), "Sequential::InputSize: empty network");
  return layers_.front()->InputSize();
}

std::size_t Sequential::OutputSize() const {
  OSAP_REQUIRE(!layers_.empty(), "Sequential::OutputSize: empty network");
  return layers_.back()->OutputSize();
}

Sequential MakeMlp(std::size_t in, const std::vector<std::size_t>& hidden,
                   std::size_t out, Rng& rng) {
  Sequential net;
  std::size_t prev = in;
  for (std::size_t h : hidden) {
    net.AddLinearReLU(prev, h, rng);
    prev = h;
  }
  net.Add(std::make_unique<Linear>(prev, out, rng));
  return net;
}

void CompositeNet::AddBranch(std::size_t begin, std::size_t width,
                             Sequential branch) {
  OSAP_REQUIRE(width > 0, "CompositeNet branch width must be > 0");
  OSAP_REQUIRE(branch.InputSize() == width,
               "CompositeNet branch InputSize must equal its column width");
  branches_.push_back(Branch{begin, width, std::move(branch)});
}

void CompositeNet::SetTrunk(Sequential trunk) {
  std::size_t total = 0;
  for (const auto& b : branches_) total += b.seq.OutputSize();
  OSAP_REQUIRE(trunk.InputSize() == total,
               "CompositeNet trunk InputSize must equal total branch output");
  trunk_ = std::move(trunk);
}

Matrix CompositeNet::Forward(const Matrix& x) {
  OSAP_REQUIRE(!branches_.empty(), "CompositeNet: no branches");
  OSAP_REQUIRE(x.cols() >= InputSize(), "CompositeNet: input too narrow");
  cached_batch_rows_ = x.rows();
  cached_input_cols_ = x.cols();
  std::vector<Matrix> outs;
  outs.reserve(branches_.size());
  for (auto& b : branches_) {
    outs.push_back(b.seq.Forward(x.SliceCols(b.begin, b.width)));
  }
  return trunk_.Forward(Matrix::ConcatCols(outs));
}

Matrix CompositeNet::Backward(const Matrix& dy) {
  Matrix dconcat = trunk_.Backward(dy);
  Matrix dx(cached_batch_rows_, cached_input_cols_);
  std::size_t offset = 0;
  for (auto& b : branches_) {
    const std::size_t w = b.seq.OutputSize();
    Matrix dbranch = b.seq.Backward(dconcat.SliceCols(offset, w));
    offset += w;
    // Scatter-add the branch's input gradient back into its column range;
    // overlapping branches (unused in practice) accumulate correctly.
    for (std::size_t r = 0; r < dx.rows(); ++r) {
      const double* src = dbranch.data() + r * dbranch.cols();
      double* dst = dx.data() + r * dx.cols() + b.begin;
      for (std::size_t c = 0; c < b.width; ++c) dst[c] += src[c];
    }
  }
  return dx;
}

const Matrix& CompositeNet::Infer(const Matrix& x,
                                  InferScratch& scratch) const {
  OSAP_REQUIRE(!branches_.empty(), "CompositeNet: no branches");
  OSAP_REQUIRE(x.cols() >= InputSize(), "CompositeNet: input too narrow");
  const std::size_t rows = x.rows();
  std::size_t total = 0;
  for (const auto& b : branches_) total += b.seq.OutputSize();
  scratch.concat.ReshapeUninitialized(rows, total);
  std::size_t offset = 0;
  for (const auto& b : branches_) {
    scratch.slice.ReshapeUninitialized(rows, b.width);
    for (std::size_t r = 0; r < rows; ++r) {
      const double* src = x.data() + r * x.cols() + b.begin;
      std::copy(src, src + b.width, scratch.slice.data() + r * b.width);
    }
    const Matrix& out = b.seq.Infer(scratch.slice, scratch.a, scratch.b);
    for (std::size_t r = 0; r < rows; ++r) {
      const double* src = out.data() + r * out.cols();
      std::copy(src, src + out.cols(),
                scratch.concat.data() + r * total + offset);
    }
    offset += out.cols();
  }
  return trunk_.Infer(scratch.concat, scratch.a, scratch.b);
}

std::vector<Param*> CompositeNet::Params() {
  std::vector<Param*> params;
  for (auto& b : branches_) {
    for (Param* p : b.seq.Params()) params.push_back(p);
  }
  for (Param* p : trunk_.Params()) params.push_back(p);
  return params;
}

std::size_t CompositeNet::InputSize() const {
  std::size_t width = 0;
  for (const auto& b : branches_) width = std::max(width, b.begin + b.width);
  return width;
}

std::size_t CompositeNet::OutputSize() const { return trunk_.OutputSize(); }

void ZeroGrads(std::vector<Param*> params) {
  for (Param* p : params) p->grad.SetZero();
}

void CopyParams(const std::vector<Param*>& src,
                const std::vector<Param*>& dst) {
  OSAP_REQUIRE(src.size() == dst.size(), "CopyParams: count mismatch");
  for (std::size_t i = 0; i < src.size(); ++i) {
    OSAP_REQUIRE(src[i]->value.rows() == dst[i]->value.rows() &&
                     src[i]->value.cols() == dst[i]->value.cols(),
                 "CopyParams: shape mismatch");
    dst[i]->value = src[i]->value;
  }
}

std::size_t ParamCount(const std::vector<Param*>& params) {
  std::size_t n = 0;
  for (const Param* p : params) n += p->value.size();
  return n;
}

}  // namespace osap::nn
