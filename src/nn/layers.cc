#include "nn/layers.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace osap::nn {

namespace {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Matrix XavierUniform(std::size_t rows, std::size_t cols, std::size_t fan_in,
                     std::size_t fan_out, Rng& rng) {
  const double a =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Matrix m(rows, cols);
  for (double& v : m.values()) v = rng.Uniform(-a, a);
  return m;
}

}  // namespace

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : weight_(XavierUniform(in, out, in, out, rng)),
      bias_(Matrix(1, out)) {
  OSAP_REQUIRE(in > 0 && out > 0, "Linear dimensions must be positive");
}

Matrix Linear::Forward(const Matrix& x) {
  OSAP_REQUIRE(x.cols() == InputSize(), "Linear: input width mismatch");
  cached_input_ = x;
  Matrix y = cached_input_.MatMul(weight_.value);
  y.AddRowBroadcast(bias_.value);
  return y;
}

Matrix Linear::Forward(Matrix&& x) {
  OSAP_REQUIRE(x.cols() == InputSize(), "Linear: input width mismatch");
  cached_input_ = std::move(x);
  Matrix y = cached_input_.MatMul(weight_.value);
  y.AddRowBroadcast(bias_.value);
  return y;
}

void Linear::InferBatch(const Matrix& x, Matrix& y) const {
  OSAP_REQUIRE(x.cols() == InputSize(), "Linear: input width mismatch");
  x.MatMulInto(weight_.value, y);
  y.AddRowBroadcast(bias_.value);
}

Matrix Linear::Backward(const Matrix& dy) {
  OSAP_REQUIRE(dy.cols() == OutputSize(), "Linear: grad width mismatch");
  OSAP_CHECK_MSG(dy.rows() == cached_input_.rows(),
                 "Linear: Backward batch must match last Forward batch");
  // Transposed-operand kernels: dW = x^T dy accumulated straight into the
  // gradient and dx = dy W^T, with no materialized Transposed() copies.
  // Bit-identical to the AddInPlace(Transposed().MatMul(...)) formulation
  // (pinned by nn_tests kernel-equivalence and gradcheck suites).
  cached_input_.MatMulTNInto(dy, weight_.grad, /*accumulate=*/true);
  bias_.grad.AddInPlace(dy.SumRows());
  Matrix dx;
  dy.MatMulNTInto(weight_.value, dx);
  return dx;
}

void ReLU::MaskAndClamp(std::vector<double>& v) {
  zeroed_.resize(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double x = v[i];
    // zeroed_ records the exact Backward predicate (x <= 0.0); the clamp
    // below is the exact Forward expression. Both match the previous
    // cached-input formulation bit for bit (including -0.0 and NaN inputs,
    // which the predicates classify independently, as before).
    zeroed_[i] = x <= 0.0 ? 1 : 0;
    v[i] = x > 0.0 ? x : 0.0;
  }
}

Matrix ReLU::Forward(const Matrix& x) {
  OSAP_REQUIRE(x.cols() == size_, "ReLU: input width mismatch");
  cached_rows_ = x.rows();
  cached_cols_ = x.cols();
  Matrix y = x;
  MaskAndClamp(y.values());
  return y;
}

Matrix ReLU::Forward(Matrix&& x) {
  OSAP_REQUIRE(x.cols() == size_, "ReLU: input width mismatch");
  cached_rows_ = x.rows();
  cached_cols_ = x.cols();
  Matrix y = std::move(x);
  MaskAndClamp(y.values());
  return y;
}

void ReLU::InferBatch(const Matrix& x, Matrix& y) const {
  OSAP_REQUIRE(x.cols() == size_, "ReLU: input width mismatch");
  y.ReshapeUninitialized(x.rows(), x.cols());
  const double* in = x.data();
  double* out = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = in[i] > 0.0 ? in[i] : 0.0;
  }
}

Matrix ReLU::Backward(const Matrix& dy) {
  Matrix dx = dy;
  return Backward(std::move(dx));
}

Matrix ReLU::Backward(Matrix&& dy) {
  OSAP_CHECK_MSG(dy.rows() == cached_rows_ && dy.cols() == cached_cols_,
                 "ReLU: Backward shape must match last Forward");
  Matrix dx = std::move(dy);
  auto& g = dx.values();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (zeroed_[i]) g[i] = 0.0;
  }
  return dx;
}

Matrix Tanh::Forward(const Matrix& x) {
  OSAP_REQUIRE(x.cols() == size_, "Tanh: input width mismatch");
  Matrix y = x;
  for (double& v : y.values()) v = std::tanh(v);
  cached_output_ = y;
  return y;
}

Matrix Tanh::Forward(Matrix&& x) {
  OSAP_REQUIRE(x.cols() == size_, "Tanh: input width mismatch");
  Matrix y = std::move(x);
  for (double& v : y.values()) v = std::tanh(v);
  cached_output_ = y;
  return y;
}

void Tanh::InferBatch(const Matrix& x, Matrix& y) const {
  OSAP_REQUIRE(x.cols() == size_, "Tanh: input width mismatch");
  y.ReshapeUninitialized(x.rows(), x.cols());
  const double* in = x.data();
  double* out = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::tanh(in[i]);
  }
}

Matrix Tanh::Backward(const Matrix& dy) {
  Matrix dx = dy;
  return Backward(std::move(dx));
}

Matrix Tanh::Backward(Matrix&& dy) {
  OSAP_CHECK_MSG(dy.rows() == cached_output_.rows() &&
                     dy.cols() == cached_output_.cols(),
                 "Tanh: Backward shape must match last Forward");
  Matrix dx = std::move(dy);
  const auto& y = cached_output_.values();
  auto& g = dx.values();
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] *= 1.0 - y[i] * y[i];
  }
  return dx;
}

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t input_length, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      input_length_(input_length),
      weight_(XavierUniform(in_channels * kernel, out_channels,
                            in_channels * kernel, out_channels, rng)),
      bias_(Matrix(1, out_channels)) {
  OSAP_REQUIRE(in_channels > 0 && out_channels > 0, "Conv1D channels > 0");
  OSAP_REQUIRE(kernel > 0 && kernel <= input_length,
               "Conv1D kernel must be in [1, input_length]");
}

Matrix Conv1D::Forward(const Matrix& x) {
  cached_input_ = x;
  // InferBatch writes every output element with the identical accumulation
  // chain, so delegating keeps Forward/InferBatch bit-identical by
  // construction.
  Matrix y;
  InferBatch(cached_input_, y);
  return y;
}

Matrix Conv1D::Forward(Matrix&& x) {
  cached_input_ = std::move(x);
  Matrix y;
  InferBatch(cached_input_, y);
  return y;
}

void Conv1D::InferBatch(const Matrix& x, Matrix& y) const {
  OSAP_REQUIRE(x.cols() == InputSize(), "Conv1D: input width mismatch");
  const std::size_t out_len = OutputLength();
  y.ReshapeUninitialized(x.rows(), OutputSize());
  const double* w = weight_.value.data();
  const double* bias = bias_.value.data();
  const std::size_t w_cols = weight_.value.cols();
  for (std::size_t n = 0; n < x.rows(); ++n) {
    const double* xin = x.data() + n * x.cols();
    double* yout = y.data() + n * y.cols();
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const double b = bias[oc];
      for (std::size_t t = 0; t < out_len; ++t) {
        double acc = b;
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          const double* xc = xin + ic * input_length_ + t;
          for (std::size_t k = 0; k < kernel_; ++k) {
            acc += xc[k] * w[(ic * kernel_ + k) * w_cols + oc];
          }
        }
        yout[oc * out_len + t] = acc;
      }
    }
  }
}

Matrix Conv1D::Backward(const Matrix& dy) {
  OSAP_REQUIRE(dy.cols() == OutputSize(), "Conv1D: grad width mismatch");
  OSAP_CHECK_MSG(dy.rows() == cached_input_.rows(),
                 "Conv1D: Backward batch must match last Forward batch");
  const std::size_t out_len = OutputLength();
  Matrix dx(cached_input_.rows(), cached_input_.cols());
  // Same (n, oc, t, ic, k) loop nest and zero-gradient skip as before,
  // with the bounds-checked At() accessors hoisted to raw pointers (the
  // checks cost more than the MACs in this inner loop).
  const double* w = weight_.value.data();
  double* wg = weight_.grad.data();
  double* bg = bias_.grad.data();
  const std::size_t w_cols = weight_.value.cols();
  for (std::size_t n = 0; n < dy.rows(); ++n) {
    const double* xin = cached_input_.data() + n * cached_input_.cols();
    const double* dout = dy.data() + n * dy.cols();
    double* din = dx.data() + n * dx.cols();
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      for (std::size_t t = 0; t < out_len; ++t) {
        const double g = dout[oc * out_len + t];
        if (g == 0.0) continue;
        bg[oc] += g;
        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
          const double* xc = xin + ic * input_length_ + t;
          double* dc = din + ic * input_length_ + t;
          for (std::size_t k = 0; k < kernel_; ++k) {
            wg[(ic * kernel_ + k) * w_cols + oc] += g * xc[k];
            dc[k] += g * w[(ic * kernel_ + k) * w_cols + oc];
          }
        }
      }
    }
  }
  return dx;
}

}  // namespace osap::nn
