// Finite-difference gradient checking.
//
// Every layer's Backward is verified against central differences in the
// test suite; this header provides the harness. It is also handy when adding
// new layers: wire the layer into a scalar loss and call MaxGradientError.
#pragma once

#include <functional>
#include <vector>

#include "nn/layers.h"

namespace osap::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;   // max |analytic - numeric|
  double max_rel_error = 0.0;   // max normalized error
  std::size_t checked = 0;      // number of scalar weights checked
};

/// Compares analytic gradients against central finite differences.
///
/// `loss_fn` must run a full forward pass and return the scalar loss
/// WITHOUT touching gradients. `backward_fn` must zero gradients, run
/// forward + backward once, and leave dLoss/dParam accumulated in each
/// Param's grad. The relative error is |a-n| / max(1e-8, |a|+|n|).
GradCheckResult CheckGradients(const std::vector<Param*>& params,
                               const std::function<double()>& loss_fn,
                               const std::function<void()>& backward_fn,
                               double epsilon = 1e-6);

}  // namespace osap::nn
