#include "nn/actor_critic_net.h"

#include <algorithm>

#include "nn/losses.h"
#include "util/check.h"

namespace osap::nn {

ActorCriticNet::ActorCriticNet(CompositeNet actor, CompositeNet critic)
    : actor_(std::move(actor)), critic_(std::move(critic)) {
  OSAP_REQUIRE(critic_.OutputSize() == 1,
               "ActorCriticNet: critic must output a single value");
  OSAP_REQUIRE(actor_.InputSize() == critic_.InputSize(),
               "ActorCriticNet: actor and critic must share the state size");
}

namespace {

// Per-thread inference buffers: single-state ActionProbs/Value calls are
// allocation-free after warm-up and never share mutable state across
// threads. The input row is a separate buffer because Infer's scratch must
// not alias its input.
InferScratch& LocalScratch() {
  thread_local InferScratch scratch;
  return scratch;
}

Matrix& LocalInputRow(std::span<const double> state) {
  thread_local Matrix row;
  row.ReshapeUninitialized(1, state.size());
  std::copy(state.begin(), state.end(), row.data());
  return row;
}

}  // namespace

std::vector<double> ActorCriticNet::ActionProbs(
    std::span<const double> state) const {
  OSAP_REQUIRE(state.size() == StateSize(),
               "ActionProbs: state size mismatch");
  const Matrix& logits = actor_.Infer(LocalInputRow(state), LocalScratch());
  return Softmax(logits.Row(0));
}

void ActorCriticNet::ActionProbsInto(std::span<const double> state,
                                     std::span<double> out) const {
  OSAP_REQUIRE(state.size() == StateSize(),
               "ActionProbs: state size mismatch");
  const Matrix& logits = actor_.Infer(LocalInputRow(state), LocalScratch());
  SoftmaxInto(logits.Row(0), out);
}

double ActorCriticNet::Value(std::span<const double> state) const {
  OSAP_REQUIRE(state.size() == StateSize(), "Value: state size mismatch");
  return critic_.Infer(LocalInputRow(state), LocalScratch()).At(0, 0);
}

Matrix ActorCriticNet::ActorLogits(const Matrix& states) {
  return actor_.Forward(states);
}

Matrix ActorCriticNet::CriticValues(const Matrix& states) {
  return critic_.Forward(states);
}

void ActorCriticNet::ActorBackward(const Matrix& dlogits) {
  actor_.Backward(dlogits);
}

void ActorCriticNet::CriticBackward(const Matrix& dvalues) {
  critic_.Backward(dvalues);
}

std::vector<Param*> ActorCriticNet::AllParams() {
  std::vector<Param*> params = actor_.Params();
  for (Param* p : critic_.Params()) params.push_back(p);
  return params;
}

}  // namespace osap::nn
