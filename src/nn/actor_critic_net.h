// Generic actor-critic network pair.
//
// Pensieve (Mao et al., SIGCOMM '17) trains two networks over the same state
// encoding: an actor mapping the state to a probability distribution over
// bitrates and a critic estimating the state value. The paper's U_pi / U_V
// ensembles (Section 2.4) are ensembles of exactly these two network kinds,
// so the class also exposes the pieces the estimators need: per-state action
// distributions and scalar values.
#pragma once

#include <span>
#include <vector>

#include "nn/sequential.h"

namespace osap::nn {

class ActorCriticNet {
 public:
  /// Takes ownership of independently-initialized actor and critic nets.
  /// The critic must output exactly one value per example.
  ActorCriticNet(CompositeNet actor, CompositeNet critic);

  /// Softmax action distribution for a single state. Runs on the
  /// cache-free inference path (thread-local scratch), so it is const and
  /// safe to call concurrently on a net shared across threads.
  std::vector<double> ActionProbs(std::span<const double> state) const;

  /// Allocation-free ActionProbs: writes the distribution into `out`
  /// (length ActionCount()). Bit-identical to ActionProbs; this is the
  /// per-decision hot-path entry used by greedy policy evaluation.
  void ActionProbsInto(std::span<const double> state,
                       std::span<double> out) const;

  /// State value estimate for a single state. Const and thread-safe like
  /// ActionProbs.
  double Value(std::span<const double> state) const;

  /// Raw actor logits for a batch (training path; caches activations).
  Matrix ActorLogits(const Matrix& states);

  /// Critic values for a batch as an N x 1 matrix (training path).
  Matrix CriticValues(const Matrix& states);

  /// Backprop entry points matching the two batch calls above.
  void ActorBackward(const Matrix& dlogits);
  void CriticBackward(const Matrix& dvalues);

  std::vector<Param*> ActorParams() { return actor_.Params(); }
  std::vector<Param*> CriticParams() { return critic_.Params(); }

  /// All parameters, actor first (for whole-model serialization).
  std::vector<Param*> AllParams();

  std::size_t StateSize() const { return actor_.InputSize(); }
  std::size_t ActionCount() const { return actor_.OutputSize(); }

  /// Read-only access to the underlying nets (for batched ensemble packing).
  const CompositeNet& actor() const { return actor_; }
  const CompositeNet& critic() const { return critic_; }

 private:
  CompositeNet actor_;
  CompositeNet critic_;
};

}  // namespace osap::nn
