#include "nn/losses.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace osap::nn {

std::vector<double> Softmax(std::span<const double> logits) {
  OSAP_REQUIRE(!logits.empty(), "Softmax: empty logits");
  const double zmax = *std::max_element(logits.begin(), logits.end());
  std::vector<double> p(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - zmax);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

void SoftmaxInto(std::span<const double> logits, std::span<double> out) {
  OSAP_REQUIRE(!logits.empty(), "Softmax: empty logits");
  OSAP_REQUIRE(out.size() == logits.size(), "SoftmaxInto: size mismatch");
  const double zmax = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - zmax);
    sum += out[i];
  }
  for (double& v : out) v /= sum;
}

Matrix SoftmaxRows(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto p = Softmax(logits.Row(r));
    std::copy(p.begin(), p.end(), out.Row(r).begin());
  }
  return out;
}

LossResult PolicyGradientLoss(const Matrix& logits,
                              std::span<const int> actions,
                              std::span<const double> advantages,
                              double entropy_coef) {
  const std::size_t n = logits.rows();
  OSAP_REQUIRE(actions.size() == n && advantages.size() == n,
               "PolicyGradientLoss: batch size mismatch");
  OSAP_REQUIRE(n > 0, "PolicyGradientLoss: empty batch");
  LossResult result;
  result.grad = Matrix(logits.rows(), logits.cols());
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r) {
    const int a = actions[r];
    OSAP_REQUIRE(a >= 0 && static_cast<std::size_t>(a) < logits.cols(),
                 "PolicyGradientLoss: action index out of range");
    const std::vector<double> p = Softmax(logits.Row(r));
    // Entropy H(p) and log-prob of the chosen action.
    double entropy = 0.0;
    for (double pi : p) {
      if (pi > 0.0) entropy -= pi * std::log(pi);
    }
    const double logp_a =
        std::log(std::max(p[static_cast<std::size_t>(a)], 1e-300));
    result.loss +=
        inv_n * (-advantages[r] * logp_a - entropy_coef * entropy);
    // dL/dz_j = A*(p_j - 1{j=a})/n + entropy_coef * p_j*(log p_j + H)/n.
    auto g = result.grad.Row(r);
    for (std::size_t j = 0; j < p.size(); ++j) {
      const double indicator = (static_cast<int>(j) == a) ? 1.0 : 0.0;
      const double d_pg = advantages[r] * (p[j] - indicator);
      const double logp_j = std::log(std::max(p[j], 1e-300));
      const double d_ent = entropy_coef * p[j] * (logp_j + entropy);
      g[j] = inv_n * (d_pg + d_ent);
    }
  }
  return result;
}

LossResult MseLoss(const Matrix& pred, const Matrix& target) {
  OSAP_REQUIRE(pred.rows() == target.rows() && pred.cols() == target.cols(),
               "MseLoss: shape mismatch");
  OSAP_REQUIRE(pred.size() > 0, "MseLoss: empty batch");
  LossResult result;
  result.grad = Matrix(pred.rows(), pred.cols());
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double diff = pred.values()[i] - target.values()[i];
    result.loss += 0.5 * diff * diff * inv_n;
    result.grad.values()[i] = diff * inv_n;
  }
  return result;
}

}  // namespace osap::nn
