#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace osap::nn {

Adam::Adam(std::vector<Param*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  OSAP_REQUIRE(!params_.empty(), "Adam: no parameters");
  OSAP_REQUIRE(config_.learning_rate > 0.0, "Adam: learning rate must be > 0");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  // Optional global-norm clipping across all parameters.
  double scale = 1.0;
  if (config_.clip_norm > 0.0) {
    double norm_sq = 0.0;
    for (const Param* p : params_) norm_sq += p->grad.SquaredNorm();
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.clip_norm) scale = config_.clip_norm / norm;
  }
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto& m = m_[i].values();
    auto& v = v_[i].values();
    auto& w = p.value.values();
    auto& g = p.grad.values();
    for (std::size_t j = 0; j < w.size(); ++j) {
      const double grad = g[j] * scale;
      m[j] = config_.beta1 * m[j] + (1.0 - config_.beta1) * grad;
      v[j] = config_.beta2 * v[j] + (1.0 - config_.beta2) * grad * grad;
      const double m_hat = m[j] / bc1;
      const double v_hat = v[j] / bc2;
      w[j] -= config_.learning_rate * m_hat /
              (std::sqrt(v_hat) + config_.epsilon);
    }
    p.grad.SetZero();
  }
}

Sgd::Sgd(std::vector<Param*> params, double learning_rate)
    : params_(std::move(params)), learning_rate_(learning_rate) {
  OSAP_REQUIRE(!params_.empty(), "Sgd: no parameters");
  OSAP_REQUIRE(learning_rate > 0.0, "Sgd: learning rate must be > 0");
}

void Sgd::Step() {
  for (Param* p : params_) {
    auto& w = p->value.values();
    auto& g = p->grad.values();
    for (std::size_t j = 0; j < w.size(); ++j) {
      w[j] -= learning_rate_ * g[j];
    }
    p->grad.SetZero();
  }
}

}  // namespace osap::nn
