#include "serve/serving_model.h"

#include <algorithm>
#include <utility>

#include "nn/losses.h"
#include "util/check.h"

namespace osap::serve {

namespace {

std::vector<const nn::CompositeNet*> DeployedActorView(
    const std::vector<std::shared_ptr<nn::ActorCriticNet>>& agents) {
  OSAP_REQUIRE(!agents.empty() && agents.front() != nullptr,
               "ServingModel: no deployed agent");
  return {&agents.front()->actor()};
}

std::vector<const nn::CompositeNet*> ActorViews(
    const std::vector<std::shared_ptr<nn::ActorCriticNet>>& agents) {
  std::vector<const nn::CompositeNet*> views;
  views.reserve(agents.size());
  for (const auto& a : agents) views.push_back(a ? &a->actor() : nullptr);
  return views;
}

std::vector<const nn::CompositeNet*> NetViews(
    const std::vector<std::shared_ptr<nn::CompositeNet>>& nets) {
  std::vector<const nn::CompositeNet*> views;
  views.reserve(nets.size());
  for (const auto& n : nets) views.push_back(n.get());
  return views;
}

/// Per-thread batched-action scratch (shards run on distinct pool
/// threads; one thread runs one shard job at a time).
struct ActionScratch {
  nn::InferScratch infer;
  std::vector<double> probs;
};

ActionScratch& LocalActionScratch() {
  thread_local ActionScratch scratch;
  return scratch;
}

}  // namespace

ServingModel::ServingModel(
    Signal signal, std::vector<std::shared_ptr<nn::ActorCriticNet>> agents,
    std::shared_ptr<const core::EnsembleModel> uncertainty,
    std::shared_ptr<const core::NoveltyDetector> novelty,
    const abr::VideoSpec& video, const abr::AbrStateLayout& layout,
    core::SafeAgentConfig safety)
    : signal_(signal),
      agents_(std::move(agents)),
      uncertainty_(std::move(uncertainty)),
      novelty_(std::move(novelty)),
      actor_(DeployedActorView(agents_)),
      fallback_(video, layout),
      layout_(layout),
      safety_(safety) {
  OSAP_REQUIRE(actor_.InputSize() == layout_.Size(),
               "ServingModel: actor input does not match the state layout");
}

std::shared_ptr<const ServingModel> ServingModel::AgentEnsemble(
    std::vector<std::shared_ptr<nn::ActorCriticNet>> agents,
    std::size_t discard, const abr::VideoSpec& video,
    const abr::AbrStateLayout& layout, core::SafeAgentConfig safety) {
  auto uncertainty = std::make_shared<const core::EnsembleModel>(
      core::EnsembleModel::Kind::kPolicyKl, ActorViews(agents), discard);
  return std::shared_ptr<const ServingModel>(
      new ServingModel(Signal::kAgentEnsemble, std::move(agents),
                       std::move(uncertainty), nullptr, video, layout,
                       safety));
}

std::shared_ptr<const ServingModel> ServingModel::ValueEnsemble(
    std::vector<std::shared_ptr<nn::ActorCriticNet>> agents,
    std::vector<std::shared_ptr<nn::CompositeNet>> value_nets,
    std::size_t discard, const abr::VideoSpec& video,
    const abr::AbrStateLayout& layout, core::SafeAgentConfig safety) {
  auto uncertainty = std::make_shared<const core::EnsembleModel>(
      core::EnsembleModel::Kind::kValueDeviation, NetViews(value_nets),
      discard);
  return std::shared_ptr<const ServingModel>(
      new ServingModel(Signal::kValueEnsemble, std::move(agents),
                       std::move(uncertainty), nullptr, video, layout,
                       safety));
}

std::shared_ptr<const ServingModel> ServingModel::Novelty(
    std::vector<std::shared_ptr<nn::ActorCriticNet>> agents,
    std::shared_ptr<const core::NoveltyDetector> novelty,
    const abr::VideoSpec& video, const abr::AbrStateLayout& layout,
    core::SafeAgentConfig safety) {
  OSAP_REQUIRE(novelty != nullptr && novelty->Fitted(),
               "ServingModel::Novelty: detector must be fitted");
  return std::shared_ptr<const ServingModel>(
      new ServingModel(Signal::kNovelty, std::move(agents), nullptr,
                       std::move(novelty), video, layout, safety));
}

void ServingModel::UncertaintyScores(
    const nn::Matrix& states, std::span<double> out,
    std::span<mdp::Action> greedy_actions) const {
  OSAP_REQUIRE(uncertainty_ != nullptr,
               "UncertaintyScores: not an ensemble deployment");
  OSAP_REQUIRE(greedy_actions.empty() || ScoresYieldActions(),
               "UncertaintyScores: only U_pi yields actions");
  uncertainty_->ScorePacked(states, out, greedy_actions);
}

void ServingModel::NoveltyDecisionValues(const double* rows,
                                         std::size_t count,
                                         std::span<double> out) const {
  OSAP_REQUIRE(novelty_ != nullptr,
               "NoveltyDecisionValues: not a novelty deployment");
  novelty_->model().DecisionValues(rows, count, out);
}

const core::NoveltyDetectorConfig& ServingModel::NoveltyConfig() const {
  OSAP_REQUIRE(novelty_ != nullptr,
               "NoveltyConfig: not a novelty deployment");
  return novelty_->config();
}

const core::NoveltyDetector::Probe& ServingModel::NoveltyProbe() const {
  OSAP_REQUIRE(novelty_ != nullptr,
               "NoveltyProbe: not a novelty deployment");
  return novelty_->probe();
}

void ServingModel::GreedyActions(const nn::Matrix& states,
                                 std::span<mdp::Action> out) const {
  const std::size_t batch = states.rows();
  if (batch == 0) return;
  OSAP_REQUIRE(out.size() >= batch, "GreedyActions: output span too short");
  ActionScratch& s = LocalActionScratch();
  s.probs.resize(ActionCount());
  // One batched pass over the deployed actor's weights, then per row the
  // exact greedy selection PensievePolicy runs: softmax the logits and
  // take the FIRST maximal probability. Argmax over raw logits could
  // disagree bitwise (softmax rounding can map distinct logits to equal
  // probabilities, shifting which index max_element picks), so the
  // softmax is replicated rather than skipped.
  const nn::Matrix& logits = actor_.InferBatch(states, s.infer);
  for (std::size_t b = 0; b < batch; ++b) {
    nn::SoftmaxInto(logits.Row(b), s.probs);
    out[b] = static_cast<mdp::Action>(std::distance(
        s.probs.begin(), std::max_element(s.probs.begin(), s.probs.end())));
  }
}

mdp::Action ServingModel::FallbackAction(const mdp::State& state) const {
  OSAP_REQUIRE(state.size() == layout_.Size(),
               "FallbackAction: state size mismatch");
  return static_cast<mdp::Action>(
      fallback_.LevelForBuffer(layout_.BufferSeconds(state)));
}

}  // namespace osap::serve
