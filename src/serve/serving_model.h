// ServingModel: the shared immutable half of a deployed OSAP scheme.
//
// A production deployment (ROADMAP north star: one Pensieve+safety-net
// instance per concurrent viewer) runs thousands of sessions against ONE
// set of trained artifacts. The sequential stack instantiates those
// artifacts per session - every SafeAgent gets its own estimator with its
// own ~100 KB packed weight copy - so N concurrent sessions stream N
// copies of identical weights from DRAM every decision round. ServingModel
// is the deduplicated alternative: one object per process holding
//   - the scheme's uncertainty model (EnsembleModel for U_pi / U_V, the
//     fitted OC-SVM + feature config + observation probe for U_S),
//   - the deployed Pensieve actor packed for batched greedy action
//     selection (a 1-member BatchedEnsemble),
//   - the Buffer-Based fallback mapping, and
//   - the SafeAgentConfig (trigger + defaulting mode) sessions start from.
// Everything here is const after construction and thread-safe; all
// per-session mutable state (trigger windows, novelty feature extractor,
// defaulted flag) lives in the DecisionService's session contexts.
//
// Every batched entry point is bit-identical to its sequential
// counterpart: UncertaintyScores to UncertaintyEstimator::Score,
// NoveltyDecisionValues to OneClassSvm::DecisionValue, GreedyActions to
// PensievePolicy (kGreedy) SelectAction, FallbackAction to
// BufferBasedPolicy::SelectAction. The service's equivalence tests pin
// this end to end against the sequential SafeAgent loop.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "abr/state.h"
#include "abr/video.h"
#include "core/ensemble_model.h"
#include "core/novelty_detector.h"
#include "core/safety_core.h"
#include "mdp/types.h"
#include "nn/actor_critic_net.h"
#include "nn/ensemble_forward.h"
#include "policies/buffer_based.h"

namespace osap::serve {

/// Which uncertainty signal the deployment monitors (paper Section 2.4).
enum class Signal {
  kNovelty,        // U_S: OC-SVM over throughput-window features
  kAgentEnsemble,  // U_pi: trimmed KL disagreement
  kValueEnsemble,  // U_V: trimmed value deviation
};

class ServingModel {
 public:
  /// U_pi deployment: `agents` are the trained ensemble (member 0 is the
  /// deployed actor), scored with `discard` members trimmed.
  static std::shared_ptr<const ServingModel> AgentEnsemble(
      std::vector<std::shared_ptr<nn::ActorCriticNet>> agents,
      std::size_t discard, const abr::VideoSpec& video,
      const abr::AbrStateLayout& layout, core::SafeAgentConfig safety);

  /// U_V deployment: the deployed actor comes from `agents.front()`, the
  /// uncertainty signal from the external `value_nets` ensemble.
  static std::shared_ptr<const ServingModel> ValueEnsemble(
      std::vector<std::shared_ptr<nn::ActorCriticNet>> agents,
      std::vector<std::shared_ptr<nn::CompositeNet>> value_nets,
      std::size_t discard, const abr::VideoSpec& video,
      const abr::AbrStateLayout& layout, core::SafeAgentConfig safety);

  /// U_S deployment: `novelty` must be fitted; its OC-SVM, feature config
  /// and observation probe are shared (const) across all sessions.
  static std::shared_ptr<const ServingModel> Novelty(
      std::vector<std::shared_ptr<nn::ActorCriticNet>> agents,
      std::shared_ptr<const core::NoveltyDetector> novelty,
      const abr::VideoSpec& video, const abr::AbrStateLayout& layout,
      core::SafeAgentConfig safety);

  Signal signal() const { return signal_; }
  const core::SafeAgentConfig& safety() const { return safety_; }
  const abr::AbrStateLayout& layout() const { return layout_; }
  /// State width every request must present (the nets' input size).
  std::size_t InputSize() const { return actor_.InputSize(); }
  std::size_t ActionCount() const { return actor_.OutputSize(); }

  /// U_pi / U_V only: scores B pre-packed state rows with one fused pass
  /// over the ensemble weights. out[b] bit-identical to the sequential
  /// estimator's Score on row b.
  ///
  /// For U_pi deployments a non-empty `greedy_actions` (>= B) also
  /// receives the deployed actor's greedy action per row at no extra
  /// inference cost: the deployed actor IS ensemble member 0, so its
  /// softmaxed distribution is already in hand from the KL score, and the
  /// selection replicates GreedyActions bit for bit (same logit bits from
  /// the packed weights, same softmax-then-first-max). U_V deployments
  /// must pass an empty span (their value members are not the actor).
  void UncertaintyScores(const nn::Matrix& states, std::span<double> out,
                         std::span<mdp::Action> greedy_actions = {}) const;

  /// True when UncertaintyScores can emit deployed-actor actions as a
  /// by-product (U_pi: the deployed actor is ensemble member 0).
  bool ScoresYieldActions() const {
    return signal_ == Signal::kAgentEnsemble;
  }

  /// U_S only: batched OC-SVM decision values over `count` contiguous
  /// feature rows (count x FeatureSize()). out[i] >= 0 means
  /// in-distribution; bit-identical to DecisionValue per row.
  void NoveltyDecisionValues(const double* rows, std::size_t count,
                             std::span<double> out) const;

  /// U_S only: feature dimensionality / extractor config / state probe
  /// for the per-session extractors the service owns.
  const core::NoveltyDetectorConfig& NoveltyConfig() const;
  const core::NoveltyDetector::Probe& NoveltyProbe() const;

  /// Deployed-policy actions for B pre-packed state rows via one batched
  /// actor pass. out[b] replicates PensievePolicy's greedy selection
  /// (softmax then first-argmax) bit for bit.
  void GreedyActions(const nn::Matrix& states,
                     std::span<mdp::Action> out) const;

  /// The Buffer-Based default action for one state (pure buffer->level
  /// mapping; no batching needed - it is a few compares).
  mdp::Action FallbackAction(const mdp::State& state) const;

 private:
  ServingModel(Signal signal,
               std::vector<std::shared_ptr<nn::ActorCriticNet>> agents,
               std::shared_ptr<const core::EnsembleModel> uncertainty,
               std::shared_ptr<const core::NoveltyDetector> novelty,
               const abr::VideoSpec& video, const abr::AbrStateLayout& layout,
               core::SafeAgentConfig safety);

  Signal signal_;
  // Keeps the member nets alive behind the packed weight snapshots.
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents_;
  std::shared_ptr<const core::EnsembleModel> uncertainty_;  // U_pi / U_V
  std::shared_ptr<const core::NoveltyDetector> novelty_;    // U_S
  nn::BatchedEnsemble actor_;  // deployed actor packed alone (1 member)
  policies::BufferBasedPolicy fallback_;
  abr::AbrStateLayout layout_;
  core::SafeAgentConfig safety_;
};

}  // namespace osap::serve
