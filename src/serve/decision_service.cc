#include "serve/decision_service.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"

namespace osap::serve {

DecisionService::DecisionService(std::shared_ptr<const ServingModel> model,
                                 DecisionServiceConfig config)
    : model_(std::move(model)), config_(config) {
  OSAP_REQUIRE(model_ != nullptr, "DecisionService: null model");
  OSAP_REQUIRE(config_.shard_count >= 1,
               "DecisionService: shard_count must be >= 1");
  OSAP_REQUIRE(config_.submitter_count >= 1 &&
                   config_.submitter_count <= config_.shard_count,
               "DecisionService: submitter_count must be in [1, shard_count]");
  core::ValidateSafeAgentConfig(model_->safety());
  if (config_.online_calibration) {
    OSAP_REQUIRE(model_->safety().trigger.mode ==
                     core::TriggerMode::kWindowVariance,
                 "DecisionService: online calibration needs the "
                 "window-variance trigger (U_pi / U_V)");
    OSAP_REQUIRE(config_.calibration_miscoverage > 0.0 &&
                     config_.calibration_miscoverage < 1.0,
                 "DecisionService: calibration_miscoverage must be in "
                 "(0, 1)");
    OSAP_REQUIRE(config_.calibration_window > 0,
                 "DecisionService: calibration_window must be > 0");
    OSAP_REQUIRE(config_.calibration_refresh_epochs > 0,
                 "DecisionService: calibration_refresh_epochs must be > 0");
  }
  // Until the first sketch publication the live threshold is the
  // model's frozen one, so warm-up decisions match the reference arm.
  live_alpha_.store(model_->safety().trigger.mode ==
                            core::TriggerMode::kBinary
                        ? 0.5
                        : model_->safety().trigger.alpha,
                    std::memory_order_relaxed);
  ring_width_ = core::SafetyRingDoubles(model_->safety());
  if (model_->signal() == Signal::kNovelty) {
    extractor_doubles_ = core::NoveltyFeatureExtractor::StorageDoubles(
        model_->NoveltyConfig());
  }
  shards_.reserve(config_.shard_count);
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    shards_.push_back(std::make_unique<ShardLane>(
        config_.extractor_slab_slots, extractor_doubles_));
    if (config_.lane_capacity_bound > 0) {
      shards_.back()->ring.SetBound(config_.lane_capacity_bound);
    }
    if (config_.online_calibration) {
      shards_.back()->sketch = util::WindowedP2Quantile(
          1.0 - config_.calibration_miscoverage,
          config_.calibration_window);
    }
  }
  if (config_.online_calibration) {
    sketch_snapshots_.assign(
        config_.shard_count,
        util::WindowedP2Quantile(1.0 - config_.calibration_miscoverage,
                                 config_.calibration_window));
  }
  group_counts_.resize(config_.submitter_count);
  for (std::size_t g = 0; g < config_.submitter_count; ++g) {
    group_counts_[g].resize(GroupEnd(g) - GroupBegin(g), 0);
  }
  if (config_.shard_workers) {
    // One persistent worker per shard that is not the first of its group;
    // group-first shards run on their group's submitting thread.
    for (std::size_t g = 0; g < config_.submitter_count; ++g) {
      for (std::size_t s = GroupBegin(g) + 1; s < GroupEnd(g); ++s) {
        worker_shards_.push_back(s);
      }
    }
    workers_.reserve(worker_shards_.size());
    for (const std::size_t s : worker_shards_) {
      workers_.emplace_back([this, s] { WorkerLoop(s); });
    }
  }
}

DecisionService::~DecisionService() {
  for (const std::size_t s : worker_shards_) {
    ShardLane& lane = *shards_[s];
    {
      std::lock_guard<std::mutex> lock(lane.mutex);
      lane.stop = true;
    }
    lane.work_cv.notify_one();
  }
  for (std::thread& worker : workers_) worker.join();
}

std::size_t DecisionService::GroupOfShard(std::size_t shard) const {
  const std::size_t base = shards_.size() / config_.submitter_count;
  const std::size_t rem = shards_.size() % config_.submitter_count;
  // The first `rem` groups are one shard wider.
  if (shard < rem * (base + 1)) return shard / (base + 1);
  return rem + (shard - rem * (base + 1)) / base;
}

DecisionService::SessionId DecisionService::InitSession(std::size_t shard,
                                                        std::size_t local) {
  ShardLane& lane = *shards_[shard];
  SessionTable& table = lane.sessions;
  if (table.hot.size() <= local) {
    table.hot.resize(local + 1);
    table.cold.resize(local + 1);
    if (ring_width_ > 0) table.rings.resize((local + 1) * ring_width_);
    if (extractor_doubles_ > 0) {
      table.extractor_of.resize(local + 1, ExtractorPool::kInvalid);
    }
    table.open.resize(local + 1, 0);
    table.last_round.resize(local + 1, 0);
  }
  // Fresh state either way: a recycled slot still carries its previous
  // occupant. The ring needs no wipe - SafetyObserve never reads slots
  // past win_size.
  table.hot[local] = core::SafetyState{};
  table.cold[local] = core::SafetyCold{};
  if (extractor_doubles_ > 0) {
    const ExtractorPool::Index slot =
        lane.extractors.Acquire([this](std::span<double> storage) {
          return core::NoveltyFeatureExtractor(model_->NoveltyConfig(),
                                               storage);
        });
    // Recycled pool slots keep the previous session's streaming state;
    // reset unconditionally (fresh slots are already reset - cheap).
    lane.extractors[slot].Reset();
    table.extractor_of[local] = slot;
  }
  table.open[local] = 1;
  table.last_round[local] = 0;
  active_count_.fetch_add(1, std::memory_order_relaxed);
  return local * shards_.size() + shard;
}

DecisionService::SessionId DecisionService::OpenSession() {
  OSAP_REQUIRE(config_.submitter_count == 1,
               "OpenSession: submitter groups must open via "
               "OpenSessionOnShard");
  SessionId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = next_id_++;
  }
  const SessionId got = InitSession(ShardOf(id), LocalOf(id));
  OSAP_CHECK(got == id);
  return id;
}

DecisionService::SessionId DecisionService::OpenSessionOnShard(
    std::size_t shard) {
  OSAP_REQUIRE(config_.submitter_count > 1,
               "OpenSessionOnShard: single-submitter services use "
               "OpenSession (global id recycling)");
  OSAP_REQUIRE(shard < shards_.size(), "OpenSessionOnShard: bad shard");
  ShardLane& lane = *shards_[shard];
  std::size_t local;
  if (!lane.free_locals.empty()) {
    local = lane.free_locals.back();
    lane.free_locals.pop_back();
  } else {
    local = lane.sessions.hot.size();
  }
  return InitSession(shard, local);
}

void DecisionService::CloseSession(SessionId id) {
  OSAP_REQUIRE(IsOpen(id), "CloseSession: unknown session");
  ShardLane& lane = *shards_[ShardOf(id)];
  const std::size_t local = LocalOf(id);
  if (extractor_doubles_ > 0) {
    lane.extractors.Release(lane.sessions.extractor_of[local]);
    lane.sessions.extractor_of[local] = ExtractorPool::kInvalid;
    // Give back whole trailing slabs once a population spike recedes
    // (no-op unless the newest slab is entirely free).
    lane.extractors.Trim();
  }
  lane.sessions.open[local] = 0;
  if (config_.submitter_count == 1) {
    free_ids_.push_back(id);
  } else {
    lane.free_locals.push_back(static_cast<std::uint32_t>(local));
  }
  active_count_.fetch_sub(1, std::memory_order_relaxed);
}

void DecisionService::CheckOpen(SessionId id) const {
  OSAP_REQUIRE(IsOpen(id), "DecisionService: unknown session");
}

bool DecisionService::Defaulted(SessionId id) const {
  CheckOpen(id);
  return shards_[ShardOf(id)]->sessions.hot[LocalOf(id)].defaulted;
}

std::size_t DecisionService::StepCount(SessionId id) const {
  CheckOpen(id);
  return shards_[ShardOf(id)]->sessions.hot[LocalOf(id)].steps;
}

double DecisionService::DefaultedFraction(SessionId id) const {
  CheckOpen(id);
  const core::SafetyState& hot =
      shards_[ShardOf(id)]->sessions.hot[LocalOf(id)];
  if (hot.steps == 0) return 0.0;
  return static_cast<double>(hot.defaulted_steps) /
         static_cast<double>(hot.steps);
}

mdp::Action DecisionService::Decide(SessionId id, const mdp::State& state) {
  const Request request{id, &state};
  mdp::Action action = 0;
  DecideBatch({&request, 1}, {&action, 1});
  return action;
}

void DecisionService::WorkerLoop(std::size_t shard) {
  ShardLane& lane = *shards_[shard];
  std::uint64_t epoch = 0;
  for (;;) {
    EpochSlot slot;
    {
      std::unique_lock<std::mutex> lock(lane.mutex);
      lane.work_cv.wait(
          lock, [&] { return lane.stop || lane.submitted > epoch; });
      if (lane.submitted == epoch) return;  // stop, and no pending epoch
      ++epoch;
      slot = lane.slots[epoch & 1];
    }
    DrainEpoch(shard, slot);
    {
      std::lock_guard<std::mutex> lock(lane.mutex);
      lane.completed = epoch;
    }
    lane.done_cv.notify_one();
  }
}

void DecisionService::DrainEpoch(std::size_t shard, const EpochSlot& slot) {
  ShardLane& lane = *shards_[shard];
  lane.arena.Reset();
  const std::span<std::size_t> idx = lane.arena.Alloc<std::size_t>(slot.count);
  for (std::size_t i = 0; i < slot.count; ++i) {
    std::uint32_t request_index = 0;
    const bool popped = lane.ring.Pop(request_index);
    OSAP_REQUIRE(popped, "DecisionService: shard ring underflow");
    idx[i] = request_index;
  }
  RunShard(shard, slot.requests, slot.out, idx);
  if (config_.online_calibration &&
      ++lane.epochs_since_publish >= config_.calibration_refresh_epochs) {
    lane.epochs_since_publish = 0;
    PublishCalibration(shard);
  }
  if (config_.lane_shrink_after > 0) MaybeShrinkLane(lane, slot.count);
}

void DecisionService::PublishCalibration(std::size_t shard) {
  ShardLane& lane = *shards_[shard];
  std::lock_guard<std::mutex> lock(calibration_mutex_);
  // Snapshot slot `shard` is only ever written by this lane's owning
  // thread; the mutex orders it against concurrent publications from
  // other lanes and against the merge below.
  sketch_snapshots_[shard] = lane.sketch;
  calibration_observations_.fetch_add(lane.calib_observed,
                                      std::memory_order_relaxed);
  calibration_exceedances_.fetch_add(lane.calib_exceeded,
                                     std::memory_order_relaxed);
  lane.calib_observed = 0;
  lane.calib_exceeded = 0;
  merge_scratch_.clear();
  for (const util::WindowedP2Quantile& snapshot : sketch_snapshots_) {
    snapshot.CollectArms(merge_scratch_);
  }
  if (!merge_scratch_.empty()) {
    // RCU-style swap: in-flight epochs keep the threshold they loaded;
    // the next epoch of every shard picks this one up lock-free.
    live_alpha_.store(
        util::P2Quantile::MergedQuantile(
            merge_scratch_, 1.0 - config_.calibration_miscoverage),
        std::memory_order_release);
  }
}

void DecisionService::MaybeShrinkLane(ShardLane& lane, std::size_t count) {
  lane.peak_count = std::max(lane.peak_count, count);
  lane.peak_arena_used =
      std::max(lane.peak_arena_used, lane.arena.UsedBytes());
  if (++lane.epochs_since_shrink < config_.lane_shrink_after) return;

  // Release anything allocated for more than 2x the period's high-water
  // need; the next spike simply regrows it. Matrices are released whole
  // (ReshapeUninitialized will re-allocate exactly the working-set size
  // next epoch), the arena down to its recent use.
  const auto maybe_release = [](nn::Matrix& matrix,
                                std::size_t needed_elems) {
    if (matrix.values().capacity() > 2 * needed_elems) matrix = nn::Matrix();
  };
  const std::size_t input = model_->InputSize();
  maybe_release(lane.states, lane.peak_count * input);
  maybe_release(lane.learned_states, lane.peak_count * input);
  if (extractor_doubles_ > 0) {
    const std::size_t fdim = 2 * model_->NoveltyConfig().k;
    maybe_release(lane.features, lane.peak_count * fdim);
  }
  if (lane.learned_actions.capacity() > 2 * lane.peak_count) {
    lane.learned_actions.clear();
    lane.learned_actions.shrink_to_fit();
  }
  if (lane.arena.CapacityBytes() > 2 * lane.peak_arena_used) {
    lane.arena.ShrinkTo(lane.peak_arena_used);
  }
  lane.peak_count = 0;
  lane.peak_arena_used = 0;
  lane.epochs_since_shrink = 0;
}

void DecisionService::DecideBatch(std::span<const Request> requests,
                                  std::span<mdp::Action> out) {
  OSAP_REQUIRE(config_.submitter_count == 1,
               "DecideBatch: submitter groups must submit via "
               "DecideBatchGroup");
  DecideBatchGroup(0, requests, out);
}

void DecisionService::DecideBatchGroup(std::size_t group,
                                       std::span<const Request> requests,
                                       std::span<mdp::Action> out) {
  OSAP_REQUIRE(group < config_.submitter_count,
               "DecideBatchGroup: bad group");
  OSAP_REQUIRE(out.size() >= requests.size(),
               "DecideBatch: output span too short");
  if (requests.empty()) return;
  OSAP_REQUIRE(
      requests.size() <= std::numeric_limits<std::uint32_t>::max(),
      "DecideBatch: request batch too large for ring indices");
  const std::size_t begin = GroupBegin(group);
  const std::size_t end = GroupEnd(group);
  // Rounds draw from one global counter so reply epochs stay unique
  // across groups; each session's duplicate stamp lives in its shard's
  // table, which only this group touches.
  const std::uint64_t round =
      round_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::size_t input = model_->InputSize();
  for (const Request& r : requests) {
    const std::size_t shard = ShardOf(r.session);
    OSAP_REQUIRE(shard >= begin && shard < end,
                 "DecideBatchGroup: session outside the submitter group");
    SessionTable& table = shards_[shard]->sessions;
    const std::size_t local = LocalOf(r.session);
    OSAP_REQUIRE(local < table.open.size() && table.open[local] != 0,
                 "DecideBatch: unknown session");
    OSAP_REQUIRE(r.state != nullptr && r.state->size() == input,
                 "DecideBatch: null or mis-sized state");
    OSAP_REQUIRE(table.last_round[local] != round,
                 "DecideBatch: a session may appear once per batch");
    table.last_round[local] = round;
  }

  // Route: one O(R) pass counting per shard, one O(R) pass staging each
  // request index into its shard's ring (replacing the old O(R x S)
  // every-shard-scans-every-request partition). Reserve() is safe here
  // because every worker of THIS group is parked between its epochs and
  // other groups never touch these lanes.
  std::vector<std::size_t>& counts = group_counts_[group];
  counts.assign(end - begin, 0);
  for (const Request& r : requests) ++counts[ShardOf(r.session) - begin];
  for (std::size_t s = begin; s < end; ++s) {
    if (counts[s - begin] > 0) shards_[s]->ring.Reserve(counts[s - begin]);
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const bool pushed = shards_[ShardOf(requests[i].session)]->ring.Push(
        static_cast<std::uint32_t>(i));
    OSAP_REQUIRE(pushed, "DecideBatch: shard ring overflow");
  }

  if (!config_.shard_workers) {
    // Serial mode: run every shard of the group inline in ascending
    // order - the bit-identity reference path.
    for (std::size_t s = begin; s < end; ++s) {
      if (counts[s - begin] == 0) continue;
      DrainEpoch(s, EpochSlot{requests, out, counts[s - begin]});
    }
    return;
  }

  // Post one epoch ticket per non-empty worker shard. Each ticket touches
  // only its own lane - there is no shared job object or global barrier.
  for (std::size_t s = begin + 1; s < end; ++s) {
    if (counts[s - begin] == 0) continue;
    ShardLane& lane = *shards_[s];
    {
      std::lock_guard<std::mutex> lock(lane.mutex);
      const std::uint64_t epoch = ++lane.submitted;
      lane.slots[epoch & 1] = EpochSlot{requests, out, counts[s - begin]};
    }
    lane.work_cv.notify_one();
  }

  // The group's first shard always runs on the calling thread,
  // overlapping the workers.
  if (counts[0] > 0) {
    DrainEpoch(begin, EpochSlot{requests, out, counts[0]});
  }

  // Collect completions in ascending shard order (deterministic, and the
  // release/acquire edge on each lane's mutex publishes the worker's
  // writes to out[] back to the caller).
  for (std::size_t s = begin + 1; s < end; ++s) {
    if (counts[s - begin] == 0) continue;
    ShardLane& lane = *shards_[s];
    std::unique_lock<std::mutex> lock(lane.mutex);
    lane.done_cv.wait(lock, [&] { return lane.completed == lane.submitted; });
  }
}

void DecisionService::RunShard(std::size_t shard,
                               std::span<const Request> requests,
                               std::span<mdp::Action> out,
                               std::span<const std::size_t> idx) {
  ShardLane& s = *shards_[shard];
  SessionTable& table = s.sessions;
  const std::size_t count = idx.size();
  if (count == 0) return;

  const std::size_t input = model_->InputSize();
  const std::span<double> scores = s.arena.Alloc<double>(count);
  // U_pi only: per-request deployed-actor actions emitted by the scoring
  // pass itself (empty for the other signals).
  std::span<mdp::Action> scored_actions;

  if (model_->signal() == Signal::kNovelty) {
    // U_S: stream each session's observation through ITS OWN extractor
    // (pooled per shard), staging completed feature vectors as rows of
    // one contiguous matrix; a single batched OC-SVM scan then replaces
    // per-session DecisionValue calls. Warm-up semantics replicate
    // NoveltyDetector::Score exactly: non-positive observations skip the
    // extractor entirely, incomplete windows score 0.
    const core::NoveltyDetector::Probe& probe = model_->NoveltyProbe();
    const std::size_t fdim = 2 * model_->NoveltyConfig().k;
    s.features.ReshapeUninitialized(count, fdim);
    const std::span<std::size_t> staged_of = s.arena.Alloc<std::size_t>(count);
    std::size_t staged = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const Request& r = requests[idx[j]];
      scores[j] = 0.0;
      const double observation = probe(*r.state);
      if (observation <= 0.0) continue;
      core::NoveltyFeatureExtractor& extractor =
          s.extractors[table.extractor_of[LocalOf(r.session)]];
      if (extractor.Push(observation, s.features.Row(staged))) {
        staged_of[staged] = j;
        ++staged;
      }
    }
    if (staged > 0) {
      const std::span<double> values = s.arena.Alloc<double>(staged);
      model_->NoveltyDecisionValues(s.features.data(), staged, values);
      for (std::size_t t = 0; t < staged; ++t) {
        scores[staged_of[t]] = values[t] >= 0.0 ? 0.0 : 1.0;
      }
    }
  } else {
    // U_pi / U_V: pack every pending state and score the whole shard with
    // one fused pass over the shared ensemble weights. For U_pi the same
    // pass also yields every session's deployed-actor action (the actor is
    // ensemble member 0), eliminating the separate actor pass below.
    s.states.ReshapeUninitialized(count, input);
    for (std::size_t j = 0; j < count; ++j) {
      const mdp::State& st = *requests[idx[j]].state;
      std::copy(st.data(), st.data() + input, s.states.Row(j).data());
    }
    if (model_->ScoresYieldActions()) {
      scored_actions = s.arena.Alloc<mdp::Action>(count);
    }
    model_->UncertaintyScores(s.states, scores, scored_actions);
  }

  // Advance each session's defaulting state machine over the dense SoA
  // table (the same core::SafetyObserve the sequential SafetyCore runs),
  // answering fallback sessions immediately and collecting the rest for
  // one batched deployed-actor pass (unless the scoring pass already
  // produced their actions).
  const core::SafeAgentConfig& safety = model_->safety();
  const std::span<std::size_t> learned_of = s.arena.Alloc<std::size_t>(count);
  std::size_t learned = 0;
  if (config_.online_calibration) {
    // Online-calibration arm: one lock-free threshold load for the whole
    // epoch, each compared statistic feeds the lane-local sketch (O(1)
    // marker update, no sharing). Publication happens at the epoch
    // cadence in DrainEpoch, never here.
    const double live_alpha = live_alpha_.load(std::memory_order_acquire);
    for (std::size_t j = 0; j < count; ++j) {
      const Request& r = requests[idx[j]];
      const std::size_t local = LocalOf(r.session);
      double* ring =
          ring_width_ > 0 ? &table.rings[local * ring_width_] : nullptr;
      double statistic = -1.0;  // untouched on warm-up steps
      const bool fallback = core::SafetyObserveLive(
          safety, table.hot[local], table.cold[local], ring, scores[j],
          live_alpha, &statistic);
      if (statistic >= 0.0) {
        s.sketch.Add(statistic);
        ++s.calib_observed;
        if (statistic > live_alpha) ++s.calib_exceeded;
      }
      if (fallback) {
        out[idx[j]] = model_->FallbackAction(*r.state);
      } else if (!scored_actions.empty()) {
        out[idx[j]] = scored_actions[j];
      } else {
        learned_of[learned++] = j;
      }
    }
  } else {
    for (std::size_t j = 0; j < count; ++j) {
      const Request& r = requests[idx[j]];
      const std::size_t local = LocalOf(r.session);
      double* ring =
          ring_width_ > 0 ? &table.rings[local * ring_width_] : nullptr;
      if (core::SafetyObserve(safety, table.hot[local], table.cold[local],
                              ring, scores[j])) {
        out[idx[j]] = model_->FallbackAction(*r.state);
      } else if (!scored_actions.empty()) {
        out[idx[j]] = scored_actions[j];
      } else {
        learned_of[learned++] = j;
      }
    }
  }
  if (learned > 0) {
    s.learned_states.ReshapeUninitialized(learned, input);
    for (std::size_t t = 0; t < learned; ++t) {
      const mdp::State& st = *requests[idx[learned_of[t]]].state;
      std::copy(st.data(), st.data() + input,
                s.learned_states.Row(t).data());
    }
    s.learned_actions.resize(learned);
    model_->GreedyActions(s.learned_states, s.learned_actions);
    for (std::size_t t = 0; t < learned; ++t) {
      out[idx[learned_of[t]]] = s.learned_actions[t];
    }
  }
}

void DecisionService::AccumulateLane(std::size_t shard,
                                     ServiceMemoryStats& stats) const {
  const ShardLane& lane = *shards_[shard];
  const SessionTable& table = lane.sessions;
  stats.session_slots += table.hot.size();
  stats.session_hot_bytes += table.hot.capacity() * sizeof(core::SafetyState);
  stats.session_cold_bytes +=
      table.cold.capacity() * sizeof(core::SafetyCold);
  stats.trigger_ring_bytes += table.rings.capacity() * sizeof(double);
  stats.registry_bytes +=
      table.extractor_of.capacity() * sizeof(ExtractorPool::Index) +
      table.open.capacity() * sizeof(std::uint8_t) +
      table.last_round.capacity() * sizeof(std::uint64_t) +
      lane.free_locals.capacity() * sizeof(std::uint32_t);
  stats.extractor_bytes += lane.extractors.CapacityBytes();
  stats.scratch_bytes +=
      sizeof(ShardLane) + lane.arena.CapacityBytes() +
      lane.states.values().capacity() * sizeof(double) +
      lane.features.values().capacity() * sizeof(double) +
      lane.learned_states.values().capacity() * sizeof(double) +
      lane.learned_actions.capacity() * sizeof(mdp::Action) +
      lane.ring.Capacity() * sizeof(std::uint32_t);
}

ServiceMemoryStats DecisionService::MemoryStats() const {
  ServiceMemoryStats stats;
  stats.open_sessions = active_count_.load(std::memory_order_relaxed);
  stats.registry_bytes = free_ids_.capacity() * sizeof(SessionId);
  for (std::size_t s = 0; s < shards_.size(); ++s) AccumulateLane(s, stats);
  for (const auto& counts : group_counts_) {
    stats.scratch_bytes += counts.capacity() * sizeof(std::size_t);
  }
  // Online-calibration writer side (per-lane sketches are members of
  // ShardLane and already inside its sizeof).
  stats.scratch_bytes +=
      sketch_snapshots_.capacity() * sizeof(util::WindowedP2Quantile) +
      merge_scratch_.capacity() * sizeof(const util::P2Quantile*);
  return stats;
}

ServiceMemoryStats DecisionService::MemoryStatsOfGroup(
    std::size_t group) const {
  OSAP_REQUIRE(group < config_.submitter_count,
               "MemoryStatsOfGroup: bad group");
  ServiceMemoryStats stats;
  for (std::size_t s = GroupBegin(group); s < GroupEnd(group); ++s) {
    AccumulateLane(s, stats);
    if (config_.submitter_count > 1) {
      // Open = ever-grown slots minus the shard's free list (exact: local
      // slots only exist once opened). The single-submitter group keeps
      // its free list globally, so fall through to active_count_ below.
      stats.open_sessions += shards_[s]->sessions.hot.size() -
                             shards_[s]->free_locals.size();
    }
  }
  if (config_.submitter_count == 1) {
    stats.open_sessions = active_count_.load(std::memory_order_relaxed);
  }
  stats.scratch_bytes += group_counts_[group].capacity() * sizeof(std::size_t);
  return stats;
}

void DecisionService::MeasureMemory(util::MemoryMeter& meter) const {
  const ServiceMemoryStats stats = MemoryStats();
  meter.Add("session.hot", stats.session_hot_bytes);
  meter.Add("session.cold", stats.session_cold_bytes);
  meter.Add("session.rings", stats.trigger_ring_bytes);
  meter.Add("session.extractors", stats.extractor_bytes);
  meter.Add("session.registry", stats.registry_bytes);
  meter.Add("shard.scratch", stats.scratch_bytes);
}

}  // namespace osap::serve
