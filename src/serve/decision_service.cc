#include "serve/decision_service.h"

#include <algorithm>

#include "util/check.h"

namespace osap::serve {

DecisionService::SessionContext::SessionContext(const ServingModel& model)
    : safety(model.safety()) {
  if (model.signal() == Signal::kNovelty) {
    extractor.emplace(model.NoveltyConfig());
  }
}

DecisionService::DecisionService(std::shared_ptr<const ServingModel> model,
                                 DecisionServiceConfig config)
    : model_(std::move(model)), config_(config) {
  OSAP_REQUIRE(model_ != nullptr, "DecisionService: null model");
  OSAP_REQUIRE(config_.shard_count >= 1,
               "DecisionService: shard_count must be >= 1");
  shards_.reserve(config_.shard_count);
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    shards_.push_back(std::make_unique<ShardScratch>());
  }
}

DecisionService::SessionId DecisionService::OpenSession() {
  SessionId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    sessions_[id] = std::make_unique<SessionContext>(*model_);
  } else {
    id = sessions_.size();
    sessions_.push_back(std::make_unique<SessionContext>(*model_));
  }
  ++active_count_;
  return id;
}

void DecisionService::CloseSession(SessionId id) {
  OSAP_REQUIRE(id < sessions_.size() && sessions_[id] != nullptr,
               "CloseSession: unknown session");
  sessions_[id].reset();
  free_slots_.push_back(id);
  --active_count_;
}

const DecisionService::SessionContext& DecisionService::Context(
    SessionId id) const {
  OSAP_REQUIRE(id < sessions_.size() && sessions_[id] != nullptr,
               "DecisionService: unknown session");
  return *sessions_[id];
}

bool DecisionService::Defaulted(SessionId id) const {
  return Context(id).safety.Defaulted();
}

std::size_t DecisionService::StepCount(SessionId id) const {
  return Context(id).safety.StepCount();
}

double DecisionService::DefaultedFraction(SessionId id) const {
  return Context(id).safety.DefaultedFraction();
}

mdp::Action DecisionService::Decide(SessionId id, const mdp::State& state) {
  const Request request{id, &state};
  mdp::Action action = 0;
  DecideBatch({&request, 1}, {&action, 1});
  return action;
}

void DecisionService::DecideBatch(std::span<const Request> requests,
                                  std::span<mdp::Action> out) {
  OSAP_REQUIRE(out.size() >= requests.size(),
               "DecideBatch: output span too short");
  if (requests.empty()) return;
  ++round_;
  const std::size_t input = model_->InputSize();
  for (const Request& r : requests) {
    OSAP_REQUIRE(r.session < sessions_.size() &&
                     sessions_[r.session] != nullptr,
                 "DecideBatch: unknown session");
    OSAP_REQUIRE(r.state != nullptr && r.state->size() == input,
                 "DecideBatch: null or mis-sized state");
    SessionContext& ctx = *sessions_[r.session];
    OSAP_REQUIRE(ctx.last_round != round_,
                 "DecideBatch: a session may appear once per batch");
    ctx.last_round = round_;
  }

  util::ThreadPool& pool =
      config_.pool != nullptr ? *config_.pool : util::ThreadPool::Shared();
  util::ParallelOptions options;
  options.max_workers = config_.max_workers;
  options.chunk = 1;  // one shard per claim: shards are coarse items
  pool.ParallelFor(
      0, shards_.size(),
      [&](std::size_t shard) { RunShard(shard, requests, out); }, options);
}

void DecisionService::RunShard(std::size_t shard,
                               std::span<const Request> requests,
                               std::span<mdp::Action> out) {
  ShardScratch& s = *shards_[shard];
  s.arena.Reset();

  // Collect this shard's requests in caller order. Shards own disjoint
  // session sets (slot % shard_count) and therefore disjoint `out`
  // entries, which is what makes the fan-out race-free.
  std::size_t count = 0;
  for (const Request& r : requests) {
    if (ShardOf(r.session) == shard) ++count;
  }
  if (count == 0) return;
  const std::span<std::size_t> idx = s.arena.Alloc<std::size_t>(count);
  {
    std::size_t n = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (ShardOf(requests[i].session) == shard) idx[n++] = i;
    }
  }

  const std::size_t input = model_->InputSize();
  const std::span<double> scores = s.arena.Alloc<double>(count);
  // U_pi only: per-request deployed-actor actions emitted by the scoring
  // pass itself (empty for the other signals).
  std::span<mdp::Action> scored_actions;

  if (model_->signal() == Signal::kNovelty) {
    // U_S: stream each session's observation through ITS OWN extractor
    // (per-session context), staging completed feature vectors as rows of
    // one contiguous matrix; a single batched OC-SVM scan then replaces
    // per-session DecisionValue calls. Warm-up semantics replicate
    // NoveltyDetector::Score exactly: non-positive observations skip the
    // extractor entirely, incomplete windows score 0.
    const core::NoveltyDetector::Probe& probe = model_->NoveltyProbe();
    const std::size_t fdim = 2 * model_->NoveltyConfig().k;
    s.features.ReshapeUninitialized(count, fdim);
    const std::span<std::size_t> staged_of = s.arena.Alloc<std::size_t>(count);
    std::size_t staged = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const Request& r = requests[idx[j]];
      SessionContext& ctx = *sessions_[r.session];
      scores[j] = 0.0;
      const double observation = probe(*r.state);
      if (observation <= 0.0) continue;
      if (ctx.extractor->Push(observation, s.features.Row(staged))) {
        staged_of[staged] = j;
        ++staged;
      }
    }
    if (staged > 0) {
      const std::span<double> values = s.arena.Alloc<double>(staged);
      model_->NoveltyDecisionValues(s.features.data(), staged, values);
      for (std::size_t t = 0; t < staged; ++t) {
        scores[staged_of[t]] = values[t] >= 0.0 ? 0.0 : 1.0;
      }
    }
  } else {
    // U_pi / U_V: pack every pending state and score the whole shard with
    // one fused pass over the shared ensemble weights. For U_pi the same
    // pass also yields every session's deployed-actor action (the actor is
    // ensemble member 0), eliminating the separate actor pass below.
    s.states.ReshapeUninitialized(count, input);
    for (std::size_t j = 0; j < count; ++j) {
      const mdp::State& st = *requests[idx[j]].state;
      std::copy(st.data(), st.data() + input, s.states.Row(j).data());
    }
    if (model_->ScoresYieldActions()) {
      scored_actions = s.arena.Alloc<mdp::Action>(count);
    }
    model_->UncertaintyScores(s.states, scores, scored_actions);
  }

  // Advance each session's defaulting state machine, answering fallback
  // sessions immediately and collecting the rest for one batched
  // deployed-actor pass (unless the scoring pass already produced their
  // actions).
  const std::span<std::size_t> learned_of = s.arena.Alloc<std::size_t>(count);
  std::size_t learned = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const Request& r = requests[idx[j]];
    SessionContext& ctx = *sessions_[r.session];
    if (ctx.safety.Observe(scores[j])) {
      out[idx[j]] = model_->FallbackAction(*r.state);
    } else if (!scored_actions.empty()) {
      out[idx[j]] = scored_actions[j];
    } else {
      learned_of[learned++] = j;
    }
  }
  if (learned > 0) {
    s.learned_states.ReshapeUninitialized(learned, input);
    for (std::size_t t = 0; t < learned; ++t) {
      const mdp::State& st = *requests[idx[learned_of[t]]].state;
      std::copy(st.data(), st.data() + input,
                s.learned_states.Row(t).data());
    }
    s.learned_actions.resize(learned);
    model_->GreedyActions(s.learned_states, s.learned_actions);
    for (std::size_t t = 0; t < learned; ++t) {
      out[idx[learned_of[t]]] = s.learned_actions[t];
    }
  }
}

}  // namespace osap::serve
