#include "serve/decision_service.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace osap::serve {

DecisionService::SessionContext::SessionContext(const ServingModel& model)
    : safety(model.safety()) {
  if (model.signal() == Signal::kNovelty) {
    extractor.emplace(model.NoveltyConfig());
  }
}

DecisionService::DecisionService(std::shared_ptr<const ServingModel> model,
                                 DecisionServiceConfig config)
    : model_(std::move(model)), config_(config) {
  OSAP_REQUIRE(model_ != nullptr, "DecisionService: null model");
  OSAP_REQUIRE(config_.shard_count >= 1,
               "DecisionService: shard_count must be >= 1");
  shards_.reserve(config_.shard_count);
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    shards_.push_back(std::make_unique<ShardLane>());
  }
  if (config_.shard_workers && shards_.size() > 1) {
    workers_.reserve(shards_.size() - 1);
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      workers_.emplace_back([this, s] { WorkerLoop(s); });
    }
  }
}

DecisionService::~DecisionService() {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    ShardLane& lane = *shards_[i + 1];
    {
      std::lock_guard<std::mutex> lock(lane.mutex);
      lane.stop = true;
    }
    lane.work_cv.notify_one();
  }
  for (std::thread& worker : workers_) worker.join();
}

DecisionService::SessionId DecisionService::OpenSession() {
  SessionId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    sessions_[id] = std::make_unique<SessionContext>(*model_);
  } else {
    id = sessions_.size();
    sessions_.push_back(std::make_unique<SessionContext>(*model_));
  }
  ++active_count_;
  return id;
}

void DecisionService::CloseSession(SessionId id) {
  OSAP_REQUIRE(id < sessions_.size() && sessions_[id] != nullptr,
               "CloseSession: unknown session");
  sessions_[id].reset();
  free_slots_.push_back(id);
  --active_count_;
}

const DecisionService::SessionContext& DecisionService::Context(
    SessionId id) const {
  OSAP_REQUIRE(id < sessions_.size() && sessions_[id] != nullptr,
               "DecisionService: unknown session");
  return *sessions_[id];
}

bool DecisionService::Defaulted(SessionId id) const {
  return Context(id).safety.Defaulted();
}

std::size_t DecisionService::StepCount(SessionId id) const {
  return Context(id).safety.StepCount();
}

double DecisionService::DefaultedFraction(SessionId id) const {
  return Context(id).safety.DefaultedFraction();
}

mdp::Action DecisionService::Decide(SessionId id, const mdp::State& state) {
  const Request request{id, &state};
  mdp::Action action = 0;
  DecideBatch({&request, 1}, {&action, 1});
  return action;
}

void DecisionService::WorkerLoop(std::size_t shard) {
  ShardLane& lane = *shards_[shard];
  std::uint64_t epoch = 0;
  for (;;) {
    EpochSlot slot;
    {
      std::unique_lock<std::mutex> lock(lane.mutex);
      lane.work_cv.wait(
          lock, [&] { return lane.stop || lane.submitted > epoch; });
      if (lane.submitted == epoch) return;  // stop, and no pending epoch
      ++epoch;
      slot = lane.slots[epoch & 1];
    }
    DrainEpoch(shard, slot);
    {
      std::lock_guard<std::mutex> lock(lane.mutex);
      lane.completed = epoch;
    }
    lane.done_cv.notify_one();
  }
}

void DecisionService::DrainEpoch(std::size_t shard, const EpochSlot& slot) {
  ShardLane& lane = *shards_[shard];
  lane.arena.Reset();
  const std::span<std::size_t> idx = lane.arena.Alloc<std::size_t>(slot.count);
  for (std::size_t i = 0; i < slot.count; ++i) {
    std::uint32_t request_index = 0;
    const bool popped = lane.ring.Pop(request_index);
    OSAP_REQUIRE(popped, "DecisionService: shard ring underflow");
    idx[i] = request_index;
  }
  RunShard(shard, slot.requests, slot.out, idx);
}

void DecisionService::DecideBatch(std::span<const Request> requests,
                                  std::span<mdp::Action> out) {
  OSAP_REQUIRE(out.size() >= requests.size(),
               "DecideBatch: output span too short");
  if (requests.empty()) return;
  OSAP_REQUIRE(
      requests.size() <= std::numeric_limits<std::uint32_t>::max(),
      "DecideBatch: request batch too large for ring indices");
  ++round_;
  const std::size_t input = model_->InputSize();
  for (const Request& r : requests) {
    OSAP_REQUIRE(r.session < sessions_.size() &&
                     sessions_[r.session] != nullptr,
                 "DecideBatch: unknown session");
    OSAP_REQUIRE(r.state != nullptr && r.state->size() == input,
                 "DecideBatch: null or mis-sized state");
    SessionContext& ctx = *sessions_[r.session];
    OSAP_REQUIRE(ctx.last_round != round_,
                 "DecideBatch: a session may appear once per batch");
    ctx.last_round = round_;
  }

  // Route: one O(R) pass counting per shard, one O(R) pass staging each
  // request index into its shard's ring (replacing the old O(R x S)
  // every-shard-scans-every-request partition). Reserve() is safe here
  // because every worker is parked between epochs.
  const std::size_t shard_count = shards_.size();
  shard_counts_.assign(shard_count, 0);
  for (const Request& r : requests) ++shard_counts_[ShardOf(r.session)];
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (shard_counts_[s] > 0) shards_[s]->ring.Reserve(shard_counts_[s]);
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const bool pushed = shards_[ShardOf(requests[i].session)]->ring.Push(
        static_cast<std::uint32_t>(i));
    OSAP_REQUIRE(pushed, "DecideBatch: shard ring overflow");
  }

  if (workers_.empty()) {
    // Serial mode (shard_workers = false, or a single shard): run every
    // shard inline in ascending order - the bit-identity reference path.
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (shard_counts_[s] == 0) continue;
      DrainEpoch(s, EpochSlot{requests, out, shard_counts_[s]});
    }
    return;
  }

  // Post one epoch ticket per non-empty worker shard. Each ticket touches
  // only its own lane - there is no shared job object or global barrier.
  for (std::size_t s = 1; s < shard_count; ++s) {
    if (shard_counts_[s] == 0) continue;
    ShardLane& lane = *shards_[s];
    {
      std::lock_guard<std::mutex> lock(lane.mutex);
      const std::uint64_t epoch = ++lane.submitted;
      lane.slots[epoch & 1] = EpochSlot{requests, out, shard_counts_[s]};
    }
    lane.work_cv.notify_one();
  }

  // Shard 0 always runs on the calling thread, overlapping the workers.
  if (shard_counts_[0] > 0) {
    DrainEpoch(0, EpochSlot{requests, out, shard_counts_[0]});
  }

  // Collect completions in ascending shard order (deterministic, and the
  // release/acquire edge on each lane's mutex publishes the worker's
  // writes to out[] back to the caller).
  for (std::size_t s = 1; s < shard_count; ++s) {
    if (shard_counts_[s] == 0) continue;
    ShardLane& lane = *shards_[s];
    std::unique_lock<std::mutex> lock(lane.mutex);
    lane.done_cv.wait(lock, [&] { return lane.completed == lane.submitted; });
  }
}

void DecisionService::RunShard(std::size_t shard,
                               std::span<const Request> requests,
                               std::span<mdp::Action> out,
                               std::span<const std::size_t> idx) {
  ShardLane& s = *shards_[shard];
  const std::size_t count = idx.size();
  if (count == 0) return;

  const std::size_t input = model_->InputSize();
  const std::span<double> scores = s.arena.Alloc<double>(count);
  // U_pi only: per-request deployed-actor actions emitted by the scoring
  // pass itself (empty for the other signals).
  std::span<mdp::Action> scored_actions;

  if (model_->signal() == Signal::kNovelty) {
    // U_S: stream each session's observation through ITS OWN extractor
    // (per-session context), staging completed feature vectors as rows of
    // one contiguous matrix; a single batched OC-SVM scan then replaces
    // per-session DecisionValue calls. Warm-up semantics replicate
    // NoveltyDetector::Score exactly: non-positive observations skip the
    // extractor entirely, incomplete windows score 0.
    const core::NoveltyDetector::Probe& probe = model_->NoveltyProbe();
    const std::size_t fdim = 2 * model_->NoveltyConfig().k;
    s.features.ReshapeUninitialized(count, fdim);
    const std::span<std::size_t> staged_of = s.arena.Alloc<std::size_t>(count);
    std::size_t staged = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const Request& r = requests[idx[j]];
      SessionContext& ctx = *sessions_[r.session];
      scores[j] = 0.0;
      const double observation = probe(*r.state);
      if (observation <= 0.0) continue;
      if (ctx.extractor->Push(observation, s.features.Row(staged))) {
        staged_of[staged] = j;
        ++staged;
      }
    }
    if (staged > 0) {
      const std::span<double> values = s.arena.Alloc<double>(staged);
      model_->NoveltyDecisionValues(s.features.data(), staged, values);
      for (std::size_t t = 0; t < staged; ++t) {
        scores[staged_of[t]] = values[t] >= 0.0 ? 0.0 : 1.0;
      }
    }
  } else {
    // U_pi / U_V: pack every pending state and score the whole shard with
    // one fused pass over the shared ensemble weights. For U_pi the same
    // pass also yields every session's deployed-actor action (the actor is
    // ensemble member 0), eliminating the separate actor pass below.
    s.states.ReshapeUninitialized(count, input);
    for (std::size_t j = 0; j < count; ++j) {
      const mdp::State& st = *requests[idx[j]].state;
      std::copy(st.data(), st.data() + input, s.states.Row(j).data());
    }
    if (model_->ScoresYieldActions()) {
      scored_actions = s.arena.Alloc<mdp::Action>(count);
    }
    model_->UncertaintyScores(s.states, scores, scored_actions);
  }

  // Advance each session's defaulting state machine, answering fallback
  // sessions immediately and collecting the rest for one batched
  // deployed-actor pass (unless the scoring pass already produced their
  // actions).
  const std::span<std::size_t> learned_of = s.arena.Alloc<std::size_t>(count);
  std::size_t learned = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const Request& r = requests[idx[j]];
    SessionContext& ctx = *sessions_[r.session];
    if (ctx.safety.Observe(scores[j])) {
      out[idx[j]] = model_->FallbackAction(*r.state);
    } else if (!scored_actions.empty()) {
      out[idx[j]] = scored_actions[j];
    } else {
      learned_of[learned++] = j;
    }
  }
  if (learned > 0) {
    s.learned_states.ReshapeUninitialized(learned, input);
    for (std::size_t t = 0; t < learned; ++t) {
      const mdp::State& st = *requests[idx[learned_of[t]]].state;
      std::copy(st.data(), st.data() + input,
                s.learned_states.Row(t).data());
    }
    s.learned_actions.resize(learned);
    model_->GreedyActions(s.learned_states, s.learned_actions);
    for (std::size_t t = 0; t < learned; ++t) {
      out[idx[learned_of[t]]] = s.learned_actions[t];
    }
  }
}

}  // namespace osap::serve
