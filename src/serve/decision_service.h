// DecisionService: a sharded multi-session decision front-end.
//
// The service owns N concurrent ABR sessions and answers "next bitrate?"
// requests by micro-batching across sessions. Sessions are assigned to
// shards round-robin (slot % shard_count); one DecideBatch call routes
// each pending request to its shard, and each shard
//   1. packs its pending sessions' states into one contiguous matrix,
//   2. computes every session's uncertainty score with a single fused
//      pass over the SHARED model weights (EnsembleModel::ScorePacked for
//      U_pi / U_V; staged feature rows + one OneClassSvm::DecisionValues
//      scan for U_S),
//   3. advances each session's defaulting state machine on its score, and
//   4. emits actions: one batched deployed-actor pass for the
//      non-defaulted sessions, the Buffer-Based mapping for the rest.
//
// Parallelism is persistent, not per-round: every shard that is not the
// first of its submitter group owns a dedicated worker thread for the
// service's whole lifetime, fed through a private SPSC ring of request
// indices plus a double-buffered input slot, and woken by an epoch ticket
// (a per-shard submitted/completed counter pair). The first shard of each
// group always runs on the submitting thread. Compared with fanning a
// thread pool out per round, this removes every piece of shared state
// from the round path - no global job object, no common mutex, no
// pool-wide barrier: posting shard k's ticket touches only shard k's
// lane, so a slow shard delays the final collection wait but never the
// staging or execution of its peers (epoch handoff instead of a round
// barrier). The submitter still collects completions in deterministic
// shard order before returning, and shards own disjoint sessions and
// disjoint out[] entries, so batched decisions stay bit-identical to the
// sequential SafeAgent loop for all three signals in both defaulting
// modes (pinned by equivalence tests).
//
// Submitter groups (DecisionServiceConfig::submitter_count, the sharded
// submit path behind the multi-edge network server): the shard range is
// partitioned into submitter_count contiguous groups and every piece of
// per-session state - the SoA tables, open flags, duplicate-round stamps,
// free lists - lives inside its shard's lane, so group g's submitter can
// open / close / DecideBatchGroup its own shards while the other groups'
// submitters do the same concurrently, with no shared mutable state
// between them (the global round counter and active-session count are
// single atomics). Each lane still has exactly ONE submitter, so the
// SPSC rings and epoch tickets need no extra locking. submitter_count = 1
// (the default) is byte-for-byte the single-submitter service described
// above.
//
// Per-session state is on a strict memory budget (ROADMAP: a million
// concurrent sessions must fit). Each shard keeps its sessions in a
// struct-of-arrays table - dense core::SafetyState records (hot), their
// variance-trigger score rings packed into one contiguous array, and the
// cold introspection fields split out - instead of per-session heap
// objects, so the epoch scan walks cache lines, an open/close touches no
// allocator in steady state (slots recycle through a free list), and a
// session costs tens of bytes. U_S deployments add a per-shard
// util::SlabPool of NoveltyFeatureExtractors whose window/pair storage is
// carved from the slab; U_pi / U_V sessions hold no extractor index and
// pay zero extractor bytes. MemoryStats() reports the exact breakdown.
//
// Per-shard scratch (index/score arrays, packed matrices, a util::Arena)
// persists across calls, so the steady state is allocation-free; after a
// population spike, lanes shrink scratch back to the recent working set
// (DecisionServiceConfig::lane_shrink_after). The throughput win over the
// one-session-at-a-time loop comes from weight de-duplication - N
// sequential sessions stream N private ~100 KB weight packs through the
// cache hierarchy per round, the service streams ONE shared pack per
// shard batch - plus shard parallelism on multi-core hosts.
//
// Thread-safety: the service synchronizes its own workers; each submitter
// GROUP is externally synchronized - do not call Open*/Close/DecideBatch*
// for the same group from multiple threads. Different groups may run
// concurrently. Open/CloseSession between a group's DecideBatch calls is
// safe (its workers are parked); the epoch ticket's release/acquire edge
// publishes the membership change to the worker that owns the session's
// shard. MemoryStats() walks every lane and requires ALL groups quiescent;
// MemoryStatsOfGroup() needs only its own group parked.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/novelty_detector.h"
#include "core/safety_core.h"
#include "mdp/types.h"
#include "nn/matrix.h"
#include "nn/sequential.h"
#include "serve/serving_model.h"
#include "util/arena.h"
#include "util/memory_meter.h"
#include "util/p2_quantile.h"
#include "util/slab_pool.h"
#include "util/spsc_ring.h"

namespace osap::serve {

struct DecisionServiceConfig {
  /// Shards sessions are distributed over; each shard is one batched unit
  /// of work per DecideBatch call. Must be >= 1.
  std::size_t shard_count = 1;
  /// Spawn one persistent worker thread per shard that is not the first
  /// of its submitter group (the first shard of each group always runs on
  /// the submitting thread, so shard_count = submitter_count never
  /// spawns). false runs every shard of a group inline on its submitter -
  /// the serial reference arm for the equivalence tests, and the right
  /// choice when the host dedicates a single core to the service.
  bool shard_workers = true;
  /// Concurrent submitter groups (must be in [1, shard_count]). The
  /// shards are split into this many contiguous groups; group g may be
  /// driven by its own thread via OpenSessionOnShard / DecideBatchGroup
  /// concurrently with the other groups. 1 = the classic single-submitter
  /// service (OpenSession / DecideBatch).
  std::size_t submitter_count = 1;
  /// Sessions per slab in the per-shard extractor pool (U_S only).
  std::size_t extractor_slab_slots = 256;
  /// Scratch shrink cadence: every lane_shrink_after epochs a shard lane
  /// compares its scratch capacity (arena + packed matrices) against the
  /// high-water use of the elapsed period and releases anything more than
  /// 2x the recent need, so a population spike does not pin its peak
  /// forever. 0 disables shrinking.
  std::size_t lane_shrink_after = 64;
  /// Hard per-lane SPSC-ring ceiling (util::SpscRing::SetBound); 0 keeps
  /// the rings unbounded (Reserve grows on demand). The network edge sets
  /// this to its admission high-water mark so an admission bug fails
  /// loudly ("shard ring overflow") instead of growing queues silently.
  /// Bounds the per-shard slice of a DecideBatch, not total sessions.
  std::size_t lane_capacity_bound = 0;

  /// Online conformal calibration (DESIGN.md §11): every decision's
  /// trigger statistic (the full-window variance) feeds a per-shard
  /// windowed P² sketch, and decisions compare against a live threshold
  /// (one lock-free atomic load per shard epoch) instead of the model's
  /// frozen alpha. Each lane publishes its sketch into a shared
  /// snapshot every calibration_refresh_epochs of its own epochs (under
  /// a writer mutex touched only at that cadence) and re-derives the
  /// merged threshold, so thresholds track gradual drift with zero
  /// pause for in-flight epochs. Requires the window-variance trigger
  /// (U_pi / U_V); off by default — the frozen-threshold path is the
  /// bit-pinned reference arm.
  bool online_calibration = false;
  /// Target per-decision miscoverage: the live threshold is the sketch
  /// union's (1 - miscoverage)-quantile.
  double calibration_miscoverage = 0.05;
  /// Observations per sketch generation; a shard's sketch reflects its
  /// last window..2*window trigger statistics.
  std::size_t calibration_window = 4096;
  /// Lane epochs between a shard's sketch publication / threshold
  /// refresh.
  std::size_t calibration_refresh_epochs = 16;
};

/// Exact byte accounting of a service's per-session and scratch memory
/// (capacity bytes of the service's own containers; the shared
/// ServingModel is excluded - it is one object per process regardless of
/// session count).
struct ServiceMemoryStats {
  std::size_t open_sessions = 0;
  std::size_t session_slots = 0;      // table rows incl. free-listed
  std::size_t session_hot_bytes = 0;  // SafetyState SoA arrays
  std::size_t session_cold_bytes = 0;
  std::size_t trigger_ring_bytes = 0;  // packed variance-trigger windows
  std::size_t extractor_bytes = 0;     // U_S slab pools (objects + storage)
  std::size_t registry_bytes = 0;  // slot registry: last-round/open/free
  std::size_t scratch_bytes = 0;   // shard lanes: arenas, matrices, rings

  /// Bytes attributable to session state (everything but shard scratch).
  std::size_t SessionBytes() const {
    return session_hot_bytes + session_cold_bytes + trigger_ring_bytes +
           extractor_bytes + registry_bytes;
  }
  std::size_t TotalBytes() const { return SessionBytes() + scratch_bytes; }
  /// Session bytes amortized over the open sessions (0 when none).
  double BytesPerSession() const {
    return open_sessions == 0 ? 0.0
                              : static_cast<double>(SessionBytes()) /
                                    static_cast<double>(open_sessions);
  }
};

class DecisionService {
 public:
  using SessionId = std::size_t;

  /// One session's pending decision request. The state must stay valid
  /// until DecideBatch returns.
  struct Request {
    SessionId session = 0;
    const mdp::State* state = nullptr;
  };

  DecisionService(std::shared_ptr<const ServingModel> model,
                  DecisionServiceConfig config = {});
  ~DecisionService();

  /// Registers a new session (fresh defaulting state / novelty window)
  /// and returns its id. Ids of closed sessions are recycled (most
  /// recently closed first). Single-submitter services only; with
  /// submitter groups use OpenSessionOnShard so each group touches only
  /// its own shards.
  SessionId OpenSession();

  /// Registers a new session pinned to `shard` (the sharded open path for
  /// submitter groups; requires submitter_count > 1). Only the group that
  /// owns `shard` may call this, from its one submitting thread.
  SessionId OpenSessionOnShard(std::size_t shard);

  /// Tears a session down; its id becomes invalid until recycled. With
  /// submitter groups, only the owning group's submitter may close it.
  void CloseSession(SessionId id);

  /// Answers one decision per request. Each session may appear at most
  /// once per call (a session's next state depends on its previous
  /// action, so two requests for one session in one batch would be
  /// ill-defined). out[i] answers requests[i].
  void DecideBatch(std::span<const Request> requests,
                   std::span<mdp::Action> out);

  /// DecideBatch for one submitter group: every request's session must
  /// live on one of the group's shards. Distinct groups may call this
  /// concurrently; within a group, calls are externally synchronized.
  void DecideBatchGroup(std::size_t group, std::span<const Request> requests,
                        std::span<mdp::Action> out);

  /// Single-session convenience wrapper around DecideBatch.
  mdp::Action Decide(SessionId id, const mdp::State& state);

  const ServingModel& model() const { return *model_; }
  std::size_t ShardCount() const { return shards_.size(); }
  /// Worker threads currently parked on shard lanes (shard_count -
  /// submitter_count when shard_workers, else 0).
  std::size_t WorkerCount() const { return workers_.size(); }
  std::size_t ActiveSessionCount() const {
    return active_count_.load(std::memory_order_relaxed);
  }
  /// The shard lane `id` routes to (stable for a session's lifetime).
  std::size_t ShardOfSession(SessionId id) const { return ShardOf(id); }
  /// DecideBatch rounds completed so far - the epoch counter replies
  /// carry on the wire. With submitter groups the counter is global:
  /// every group's round draws the next value.
  std::uint64_t RoundCount() const {
    return round_.load(std::memory_order_relaxed);
  }

  // --- submitter groups --------------------------------------------------
  std::size_t SubmitterCount() const { return config_.submitter_count; }
  /// Shards [GroupBegin(g), GroupEnd(g)) belong to group g (contiguous,
  /// non-empty, sizes differ by at most one).
  std::size_t GroupBegin(std::size_t group) const {
    const std::size_t base = shards_.size() / config_.submitter_count;
    const std::size_t rem = shards_.size() % config_.submitter_count;
    return group * base + (group < rem ? group : rem);
  }
  std::size_t GroupEnd(std::size_t group) const {
    return GroupBegin(group + 1);
  }
  std::size_t GroupOfShard(std::size_t shard) const;

  /// Per-session introspection (id must be open).
  bool Defaulted(SessionId id) const;
  std::size_t StepCount(SessionId id) const;
  double DefaultedFraction(SessionId id) const;

  // --- online calibration ------------------------------------------------
  bool OnlineCalibration() const { return config_.online_calibration; }
  /// The threshold the decision path compares against right now: the
  /// merged-sketch quantile once calibration has warmed up, the model's
  /// frozen trigger threshold before that (and always, when online
  /// calibration is off).
  double LiveAlpha() const {
    return live_alpha_.load(std::memory_order_relaxed);
  }
  /// Trigger statistics observed / found above the then-live threshold,
  /// as of each lane's last publication (counters advance at the
  /// calibration_refresh_epochs cadence, not per decision).
  std::uint64_t CalibrationObservations() const {
    return calibration_observations_.load(std::memory_order_relaxed);
  }
  std::uint64_t CalibrationExceedances() const {
    return calibration_exceedances_.load(std::memory_order_relaxed);
  }

  /// Exact capacity-byte accounting of the service's own containers.
  /// Call only while EVERY submitter group is parked (walks all lanes).
  ServiceMemoryStats MemoryStats() const;

  /// The same accounting restricted to one group's shards (its share of
  /// the session tables, extractors, and scratch). Safe while OTHER
  /// groups run - it reads nothing outside the group's lanes.
  ServiceMemoryStats MemoryStatsOfGroup(std::size_t group) const;

  /// Adds the same accounting to `meter` under "session.hot",
  /// "session.cold", "session.rings", "session.extractors",
  /// "session.registry", and "shard.scratch".
  void MeasureMemory(util::MemoryMeter& meter) const;

 private:
  /// One epoch's input for a shard: the round's request/out spans plus
  /// how many indices the worker must drain from its ring.
  struct EpochSlot {
    std::span<const Request> requests;
    std::span<mdp::Action> out;
    std::size_t count = 0;
  };

  using ExtractorPool = util::SlabPool<core::NoveltyFeatureExtractor>;

  /// Struct-of-arrays session table for one shard, indexed by local slot
  /// (id / shard_count). The epoch scan touches hot[] and rings[] only;
  /// open[] / last_round[] are the validation registry (per shard so
  /// concurrent submitter groups never share registry storage), cold[]
  /// is introspection, extractor_of[] routes U_S sessions to their
  /// pooled extractor (empty table for the other signals).
  struct SessionTable {
    std::vector<core::SafetyState> hot;
    std::vector<core::SafetyCold> cold;
    std::vector<double> rings;  // local slots x ring_width, packed
    std::vector<ExtractorPool::Index> extractor_of;  // U_S only
    std::vector<std::uint8_t> open;
    std::vector<std::uint64_t> last_round;  // duplicate-request stamps
  };

  /// Per-shard lane: the shard's session table and extractor pool plus
  /// scratch that persists across DecideBatch calls plus (for shards
  /// that are not the first of their group, under shard_workers) the
  /// handoff state its pinned worker drains. unique_ptr in shards_
  /// because the arena and the synchronization members are pinned in
  /// place (non-movable).
  struct ShardLane {
    ShardLane(std::size_t slab_slots, std::size_t scratch_doubles)
        : extractors(slab_slots, scratch_doubles) {}

    // --- session state owned by this shard ---
    SessionTable sessions;
    ExtractorPool extractors;  // U_S per-session extractors
    /// Recycled local slots (multi-submitter opens; the single-submitter
    /// path keeps its LIFO in the service-wide free_ids_ instead so id
    /// recycling order matches the classic service exactly).
    std::vector<std::uint32_t> free_locals;

    // --- online calibration (owned by whichever thread runs the shard) ---
    util::WindowedP2Quantile sketch;  // trigger statistics, local
    std::uint64_t calib_observed = 0;    // deltas since last publication
    std::uint64_t calib_exceeded = 0;
    std::size_t epochs_since_publish = 0;

    // --- scratch owned by whichever thread runs the shard ---
    util::Arena arena;        // per-epoch index/score arrays
    nn::Matrix states;        // packed request states
    nn::Matrix features;      // U_S staged feature rows
    nn::Matrix learned_states;
    std::vector<mdp::Action> learned_actions;
    std::size_t peak_count = 0;       // requests/epoch since last shrink
    std::size_t peak_arena_used = 0;  // arena bytes since last shrink
    std::size_t epochs_since_shrink = 0;

    // --- submitter -> worker handoff (workers only) ---
    util::SpscRing<std::uint32_t> ring;  // request indices for the epoch
    EpochSlot slots[2];                  // double-buffered, epoch & 1
    std::mutex mutex;
    std::condition_variable work_cv;  // worker parks here for its ticket
    std::condition_variable done_cv;  // submitter waits for completion
    std::uint64_t submitted = 0;      // epochs posted to this lane
    std::uint64_t completed = 0;      // epochs the worker has finished
    bool stop = false;
  };

  void WorkerLoop(std::size_t shard);
  /// Pops `slot.count` request indices off the shard's ring into arena
  /// storage and runs the shard on them. Runs on the shard's worker (or
  /// the group's submitter, for group-first shards / serial mode).
  void DrainEpoch(std::size_t shard, const EpochSlot& slot);
  /// Scores and answers one shard's slice of the round. `idx` lists the
  /// shard's request indices in caller order.
  void RunShard(std::size_t shard, std::span<const Request> requests,
                std::span<mdp::Action> out, std::span<const std::size_t> idx);
  /// Periodic scratch diet: tracks the lane's high-water use and, every
  /// lane_shrink_after epochs, releases arena blocks / packed matrices
  /// beyond 2x the recent need. Runs on the lane's owning thread at the
  /// end of DrainEpoch.
  void MaybeShrinkLane(ShardLane& lane, std::size_t count);
  /// Publishes lane `shard`'s sketch + coverage deltas into the shared
  /// snapshot (writer mutex) and re-derives the merged live threshold.
  /// Called from the lane's owning thread at the refresh cadence.
  void PublishCalibration(std::size_t shard);
  /// Initializes slot `local` of `shard` as a fresh session and returns
  /// its id (shared tail of both open paths).
  SessionId InitSession(std::size_t shard, std::size_t local);
  std::size_t ShardOf(SessionId id) const { return id % shards_.size(); }
  std::size_t LocalOf(SessionId id) const { return id / shards_.size(); }
  bool IsOpen(SessionId id) const {
    const SessionTable& table = shards_[ShardOf(id)]->sessions;
    const std::size_t local = LocalOf(id);
    return local < table.open.size() && table.open[local] != 0;
  }
  void CheckOpen(SessionId id) const;
  /// Accumulates lane `shard`'s containers into `stats`.
  void AccumulateLane(std::size_t shard, ServiceMemoryStats& stats) const;

  std::shared_ptr<const ServingModel> model_;
  DecisionServiceConfig config_;
  std::vector<std::unique_ptr<ShardLane>> shards_;
  std::vector<std::thread> workers_;
  std::vector<std::size_t> worker_shards_;  // shard drained by workers_[i]

  // Single-submitter id allocation (OpenSession): LIFO recycling across
  // all shards plus a sequential high-water counter - the classic
  // allocation order the recycling tests pin. Multi-submitter services
  // allocate per shard (ShardLane::free_locals) instead and leave these
  // untouched.
  std::vector<SessionId> free_ids_;
  SessionId next_id_ = 0;

  std::atomic<std::size_t> active_count_{0};
  std::size_t ring_width_ = 0;        // trigger-ring doubles per session
  std::size_t extractor_doubles_ = 0;  // slab scratch per U_S session
  /// Per-group routing scratch: group_counts_[g][s - GroupBegin(g)] is
  /// the per-shard request count of group g's current round. Separate
  /// allocations per group, so concurrent rounds never share storage.
  std::vector<std::vector<std::size_t>> group_counts_;
  std::atomic<std::uint64_t> round_{0};

  // --- online calibration (DESIGN.md §11) ---
  /// Threshold the decision path compares against (lock-free read once
  /// per shard epoch). Holds the model's frozen threshold when online
  /// calibration is off or not yet warmed up.
  std::atomic<double> live_alpha_{0.0};
  /// Writer side: per-shard sketch snapshots, merged into live_alpha_
  /// at each publication. Guarded by calibration_mutex_; each slot is
  /// only ever written by its shard's owning thread.
  std::mutex calibration_mutex_;
  std::vector<util::WindowedP2Quantile> sketch_snapshots_;
  std::vector<const util::P2Quantile*> merge_scratch_;  // under the mutex
  std::atomic<std::uint64_t> calibration_observations_{0};
  std::atomic<std::uint64_t> calibration_exceedances_{0};
};

}  // namespace osap::serve
