// DecisionService: a sharded multi-session decision front-end.
//
// The service owns N concurrent ABR sessions and answers "next bitrate?"
// requests by micro-batching across sessions. Sessions are assigned to
// shards round-robin (slot % shard_count); one DecideBatch call routes
// each pending request to its shard, and each shard
//   1. packs its pending sessions' states into one contiguous matrix,
//   2. computes every session's uncertainty score with a single fused
//      pass over the SHARED model weights (EnsembleModel::ScorePacked for
//      U_pi / U_V; staged feature rows + one OneClassSvm::DecisionValues
//      scan for U_S),
//   3. advances each session's defaulting state machine on its score, and
//   4. emits actions: one batched deployed-actor pass for the
//      non-defaulted sessions, the Buffer-Based mapping for the rest.
//
// Parallelism is persistent, not per-round: every shard beyond the first
// owns a dedicated worker thread for the service's whole lifetime, fed
// through a private SPSC ring of request indices plus a double-buffered
// input slot, and woken by an epoch ticket (a per-shard submitted/
// completed counter pair). Shard 0 always runs on the calling thread.
// Compared with fanning a thread pool out per round, this removes every
// piece of shared state from the round path - no global job object, no
// common mutex, no pool-wide barrier: posting shard k's ticket touches
// only shard k's lane, so a slow shard delays the final collection wait
// but never the staging or execution of its peers (epoch handoff instead
// of a round barrier). The caller still collects completions in
// deterministic shard order before returning, and shards own disjoint
// sessions and disjoint out[] entries, so batched decisions stay
// bit-identical to the sequential SafeAgent loop for all three signals
// in both defaulting modes (pinned by equivalence tests).
//
// Per-session state is on a strict memory budget (ROADMAP: a million
// concurrent sessions must fit). Each shard keeps its sessions in a
// struct-of-arrays table - dense core::SafetyState records (hot), their
// variance-trigger score rings packed into one contiguous array, and the
// cold introspection fields split out - instead of per-session heap
// objects, so the epoch scan walks cache lines, an open/close touches no
// allocator in steady state (slots recycle through a free list), and a
// session costs tens of bytes. U_S deployments add a per-shard
// util::SlabPool of NoveltyFeatureExtractors whose window/pair storage is
// carved from the slab; U_pi / U_V sessions hold no extractor index and
// pay zero extractor bytes. MemoryStats() reports the exact breakdown.
//
// Per-shard scratch (index/score arrays, packed matrices, a util::Arena)
// persists across calls, so the steady state is allocation-free; after a
// population spike, lanes shrink scratch back to the recent working set
// (DecisionServiceConfig::lane_shrink_after). The throughput win over the
// one-session-at-a-time loop comes from weight de-duplication - N
// sequential sessions stream N private ~100 KB weight packs through the
// cache hierarchy per round, the service streams ONE shared pack per
// shard batch - plus shard parallelism on multi-core hosts.
//
// Thread-safety: the service synchronizes its own workers; the service
// object itself is externally synchronized - do not call Open/Close/
// DecideBatch concurrently from multiple threads. Open/CloseSession
// between DecideBatch calls is safe (workers are parked); the epoch
// ticket's release/acquire edge publishes the membership change to the
// worker that owns the session's shard.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/novelty_detector.h"
#include "core/safety_core.h"
#include "mdp/types.h"
#include "nn/matrix.h"
#include "nn/sequential.h"
#include "serve/serving_model.h"
#include "util/arena.h"
#include "util/memory_meter.h"
#include "util/slab_pool.h"
#include "util/spsc_ring.h"

namespace osap::serve {

struct DecisionServiceConfig {
  /// Shards sessions are distributed over; each shard is one batched unit
  /// of work per DecideBatch call. Must be >= 1.
  std::size_t shard_count = 1;
  /// Spawn one persistent worker thread per shard beyond the first (shard
  /// 0 always runs on the calling thread, so shard_count = 1 never
  /// spawns). false runs every shard inline on the caller - the serial
  /// reference arm for the equivalence tests, and the right choice when
  /// the host dedicates a single core to the service.
  bool shard_workers = true;
  /// Sessions per slab in the per-shard extractor pool (U_S only).
  std::size_t extractor_slab_slots = 256;
  /// Scratch shrink cadence: every lane_shrink_after epochs a shard lane
  /// compares its scratch capacity (arena + packed matrices) against the
  /// high-water use of the elapsed period and releases anything more than
  /// 2x the recent need, so a population spike does not pin its peak
  /// forever. 0 disables shrinking.
  std::size_t lane_shrink_after = 64;
  /// Hard per-lane SPSC-ring ceiling (util::SpscRing::SetBound); 0 keeps
  /// the rings unbounded (Reserve grows on demand). The network edge sets
  /// this to its admission high-water mark so an admission bug fails
  /// loudly ("shard ring overflow") instead of growing queues silently.
  /// Bounds the per-shard slice of a DecideBatch, not total sessions.
  std::size_t lane_capacity_bound = 0;
};

/// Exact byte accounting of a service's per-session and scratch memory
/// (capacity bytes of the service's own containers; the shared
/// ServingModel is excluded - it is one object per process regardless of
/// session count).
struct ServiceMemoryStats {
  std::size_t open_sessions = 0;
  std::size_t session_slots = 0;      // table rows incl. free-listed
  std::size_t session_hot_bytes = 0;  // SafetyState SoA arrays
  std::size_t session_cold_bytes = 0;
  std::size_t trigger_ring_bytes = 0;  // packed variance-trigger windows
  std::size_t extractor_bytes = 0;     // U_S slab pools (objects + storage)
  std::size_t registry_bytes = 0;  // slot registry: last-round/open/free
  std::size_t scratch_bytes = 0;   // shard lanes: arenas, matrices, rings

  /// Bytes attributable to session state (everything but shard scratch).
  std::size_t SessionBytes() const {
    return session_hot_bytes + session_cold_bytes + trigger_ring_bytes +
           extractor_bytes + registry_bytes;
  }
  std::size_t TotalBytes() const { return SessionBytes() + scratch_bytes; }
  /// Session bytes amortized over the open sessions (0 when none).
  double BytesPerSession() const {
    return open_sessions == 0 ? 0.0
                              : static_cast<double>(SessionBytes()) /
                                    static_cast<double>(open_sessions);
  }
};

class DecisionService {
 public:
  using SessionId = std::size_t;

  /// One session's pending decision request. The state must stay valid
  /// until DecideBatch returns.
  struct Request {
    SessionId session = 0;
    const mdp::State* state = nullptr;
  };

  DecisionService(std::shared_ptr<const ServingModel> model,
                  DecisionServiceConfig config = {});
  ~DecisionService();

  /// Registers a new session (fresh defaulting state / novelty window)
  /// and returns its id. Ids of closed sessions are recycled.
  SessionId OpenSession();

  /// Tears a session down; its id becomes invalid until recycled.
  void CloseSession(SessionId id);

  /// Answers one decision per request. Each session may appear at most
  /// once per call (a session's next state depends on its previous
  /// action, so two requests for one session in one batch would be
  /// ill-defined). out[i] answers requests[i].
  void DecideBatch(std::span<const Request> requests,
                   std::span<mdp::Action> out);

  /// Single-session convenience wrapper around DecideBatch.
  mdp::Action Decide(SessionId id, const mdp::State& state);

  const ServingModel& model() const { return *model_; }
  std::size_t ShardCount() const { return shards_.size(); }
  /// Worker threads currently parked on shard lanes (shard_count - 1 when
  /// shard_workers, else 0).
  std::size_t WorkerCount() const { return workers_.size(); }
  std::size_t ActiveSessionCount() const { return active_count_; }
  /// The shard lane `id` routes to (stable for a session's lifetime).
  std::size_t ShardOfSession(SessionId id) const { return ShardOf(id); }
  /// DecideBatch rounds completed so far - the epoch counter replies
  /// carry on the wire.
  std::uint64_t RoundCount() const { return round_; }

  /// Per-session introspection (id must be open).
  bool Defaulted(SessionId id) const;
  std::size_t StepCount(SessionId id) const;
  double DefaultedFraction(SessionId id) const;

  /// Exact capacity-byte accounting of the service's own containers.
  /// Call between DecideBatch rounds only (walks the shard lanes).
  ServiceMemoryStats MemoryStats() const;

  /// Adds the same accounting to `meter` under "session.hot",
  /// "session.cold", "session.rings", "session.extractors",
  /// "session.registry", and "shard.scratch".
  void MeasureMemory(util::MemoryMeter& meter) const;

 private:
  /// One epoch's input for a shard: the round's request/out spans plus
  /// how many indices the worker must drain from its ring.
  struct EpochSlot {
    std::span<const Request> requests;
    std::span<mdp::Action> out;
    std::size_t count = 0;
  };

  using ExtractorPool = util::SlabPool<core::NoveltyFeatureExtractor>;

  /// Struct-of-arrays session table for one shard, indexed by local slot
  /// (id / shard_count). The epoch scan touches hot[] and rings[] only;
  /// cold[] is introspection, extractor_of[] routes U_S sessions to their
  /// pooled extractor (empty table for the other signals).
  struct SessionTable {
    std::vector<core::SafetyState> hot;
    std::vector<core::SafetyCold> cold;
    std::vector<double> rings;  // local slots x ring_width, packed
    std::vector<ExtractorPool::Index> extractor_of;  // U_S only
  };

  /// Per-shard lane: the shard's session table and extractor pool plus
  /// scratch that persists across DecideBatch calls plus (for shards
  /// beyond 0 under shard_workers) the handoff state its pinned worker
  /// drains. unique_ptr in shards_ because the arena and the
  /// synchronization members are pinned in place (non-movable).
  struct ShardLane {
    ShardLane(std::size_t slab_slots, std::size_t scratch_doubles)
        : extractors(slab_slots, scratch_doubles) {}

    // --- session state owned by this shard ---
    SessionTable sessions;
    ExtractorPool extractors;  // U_S per-session extractors

    // --- scratch owned by whichever thread runs the shard ---
    util::Arena arena;        // per-epoch index/score arrays
    nn::Matrix states;        // packed request states
    nn::Matrix features;      // U_S staged feature rows
    nn::Matrix learned_states;
    std::vector<mdp::Action> learned_actions;
    std::size_t peak_count = 0;       // requests/epoch since last shrink
    std::size_t peak_arena_used = 0;  // arena bytes since last shrink
    std::size_t epochs_since_shrink = 0;

    // --- caller -> worker handoff (workers only) ---
    util::SpscRing<std::uint32_t> ring;  // request indices for the epoch
    EpochSlot slots[2];                  // double-buffered, epoch & 1
    std::mutex mutex;
    std::condition_variable work_cv;  // worker parks here for its ticket
    std::condition_variable done_cv;  // caller waits for completion here
    std::uint64_t submitted = 0;      // epochs posted to this lane
    std::uint64_t completed = 0;      // epochs the worker has finished
    bool stop = false;
  };

  void WorkerLoop(std::size_t shard);
  /// Pops `slot.count` request indices off the shard's ring into arena
  /// storage and runs the shard on them. Runs on the shard's worker (or
  /// the caller, for shard 0 / serial mode).
  void DrainEpoch(std::size_t shard, const EpochSlot& slot);
  /// Scores and answers one shard's slice of the round. `idx` lists the
  /// shard's request indices in caller order.
  void RunShard(std::size_t shard, std::span<const Request> requests,
                std::span<mdp::Action> out, std::span<const std::size_t> idx);
  /// Periodic scratch diet: tracks the lane's high-water use and, every
  /// lane_shrink_after epochs, releases arena blocks / packed matrices
  /// beyond 2x the recent need. Runs on the lane's owning thread at the
  /// end of DrainEpoch.
  void MaybeShrinkLane(ShardLane& lane, std::size_t count);
  std::size_t ShardOf(SessionId id) const { return id % shards_.size(); }
  std::size_t LocalOf(SessionId id) const { return id / shards_.size(); }
  void CheckOpen(SessionId id) const;

  std::shared_ptr<const ServingModel> model_;
  DecisionServiceConfig config_;
  std::vector<std::unique_ptr<ShardLane>> shards_;
  std::vector<std::thread> workers_;  // workers_[i] drains shard i + 1

  // Slot registry (slot-indexed, spanning all shards). last_round_ is the
  // duplicate-request guard: DecideBatch stamps each session with the
  // round number and rejects a second appearance.
  std::vector<std::uint64_t> last_round_;
  std::vector<std::uint8_t> open_;
  std::vector<SessionId> free_slots_;
  std::size_t active_count_ = 0;
  std::size_t ring_width_ = 0;        // trigger-ring doubles per session
  std::size_t extractor_doubles_ = 0;  // slab scratch per U_S session
  std::vector<std::size_t> shard_counts_;  // per-round routing scratch
  std::uint64_t round_ = 0;
};

}  // namespace osap::serve
