// DecisionService: a sharded multi-session decision front-end.
//
// The service owns N concurrent ABR sessions and answers "next bitrate?"
// requests by micro-batching across sessions. Sessions are assigned to
// shards round-robin (slot % shard_count); one DecideBatch call fans the
// shards out over a thread pool, and each shard
//   1. packs its pending sessions' states into one contiguous matrix,
//   2. computes every session's uncertainty score with a single fused
//      pass over the SHARED model weights (EnsembleModel::ScorePacked for
//      U_pi / U_V; staged feature rows + one OneClassSvm::DecisionValues
//      scan for U_S),
//   3. advances each session's SafetyCore state machine on its score, and
//   4. emits actions: one batched deployed-actor pass for the
//      non-defaulted sessions, the Buffer-Based mapping for the rest.
// Per-shard scratch (request lists, packed matrices, a util::Arena for
// the short-lived arrays) persists across calls, so the steady state is
// allocation-free.
//
// Sessions are mutually independent, so reordering work across sessions
// cannot change any session's outcome: each action the service returns is
// bit-identical to what a sequential SafeAgent running that session alone
// would pick (equivalence tests pin this for U_S / U_pi / U_V in both
// kPermanent and kRevocable modes). The throughput win over the
// one-session-at-a-time loop comes from weight de-duplication - N
// sequential sessions stream N private ~100 KB weight packs through the
// cache hierarchy per round, the service streams ONE shared pack per
// shard batch - plus shard parallelism on multi-core hosts.
//
// Thread-safety: DecideBatch is internally parallel but the service
// object itself is externally synchronized - do not call Open/Close/
// DecideBatch concurrently from multiple threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/novelty_detector.h"
#include "core/safety_core.h"
#include "mdp/types.h"
#include "nn/matrix.h"
#include "nn/sequential.h"
#include "serve/serving_model.h"
#include "util/arena.h"
#include "util/thread_pool.h"

namespace osap::serve {

struct DecisionServiceConfig {
  /// Shards sessions are distributed over; each shard is one batched unit
  /// of work per DecideBatch call. Must be >= 1.
  std::size_t shard_count = 1;
  /// Pool the shards fan out on; nullptr uses util::ThreadPool::Shared().
  /// (Tests inject a private pool; the TSan smoke needs workers even on a
  /// 1-core host.)
  util::ThreadPool* pool = nullptr;
  /// Cap on pool workers joining one DecideBatch (the calling thread
  /// always participates). 0 runs the shards serially on the caller.
  std::size_t max_workers = std::numeric_limits<std::size_t>::max();
};

class DecisionService {
 public:
  using SessionId = std::size_t;

  /// One session's pending decision request. The state must stay valid
  /// until DecideBatch returns.
  struct Request {
    SessionId session = 0;
    const mdp::State* state = nullptr;
  };

  DecisionService(std::shared_ptr<const ServingModel> model,
                  DecisionServiceConfig config = {});

  /// Registers a new session (fresh SafetyCore / novelty window) and
  /// returns its id. Ids of closed sessions are recycled.
  SessionId OpenSession();

  /// Tears a session down; its id becomes invalid until recycled.
  void CloseSession(SessionId id);

  /// Answers one decision per request. Each session may appear at most
  /// once per call (a session's next state depends on its previous
  /// action, so two requests for one session in one batch would be
  /// ill-defined). out[i] answers requests[i].
  void DecideBatch(std::span<const Request> requests,
                   std::span<mdp::Action> out);

  /// Single-session convenience wrapper around DecideBatch.
  mdp::Action Decide(SessionId id, const mdp::State& state);

  const ServingModel& model() const { return *model_; }
  std::size_t ShardCount() const { return shards_.size(); }
  std::size_t ActiveSessionCount() const { return active_count_; }

  /// Per-session introspection (id must be open).
  bool Defaulted(SessionId id) const;
  std::size_t StepCount(SessionId id) const;
  double DefaultedFraction(SessionId id) const;

 private:
  /// Per-session mutable context: the defaulting state machine plus (for
  /// U_S deployments) the streaming feature extractor. A few dozen bytes
  /// - the whole point of the shared-model split.
  struct SessionContext {
    explicit SessionContext(const ServingModel& model);
    core::SafetyCore safety;
    std::optional<core::NoveltyFeatureExtractor> extractor;  // U_S only
    std::uint64_t last_round = 0;  // duplicate-request guard
  };

  /// Per-shard scratch; persists across DecideBatch calls.
  struct ShardScratch {
    util::Arena arena;        // per-call index/score arrays
    nn::Matrix states;        // packed request states
    nn::Matrix features;      // U_S staged feature rows
    nn::Matrix learned_states;
    std::vector<mdp::Action> learned_actions;
  };

  void RunShard(std::size_t shard, std::span<const Request> requests,
                std::span<mdp::Action> out);
  std::size_t ShardOf(SessionId id) const { return id % shards_.size(); }
  const SessionContext& Context(SessionId id) const;

  std::shared_ptr<const ServingModel> model_;
  DecisionServiceConfig config_;
  std::vector<std::unique_ptr<SessionContext>> sessions_;  // slot-indexed
  std::vector<SessionId> free_slots_;
  std::size_t active_count_ = 0;
  // unique_ptr because util::Arena is pinned in place (non-movable).
  std::vector<std::unique_ptr<ShardScratch>> shards_;
  std::uint64_t round_ = 0;
};

}  // namespace osap::serve
