// External value-function training for the U_V ensemble.
//
// Paper Section 2.4: "even if an agent does not explicitly estimate state
// values, a value function for that agent can still be trained externally
// by observing the history of states, actions, and rewards resulting from
// the agent-environment interaction while training." This trainer does
// exactly that: it rolls out a fixed policy on the training environment,
// computes discounted returns, and regresses V(s) -> return with Adam.
// Ensemble members differ only in network initialization (they share the
// collected experience), matching the paper's setup.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mdp/environment.h"
#include "mdp/policy.h"
#include "nn/sequential.h"
#include "util/thread_pool.h"

namespace osap::rl {

struct ValueTrainConfig {
  double gamma = 0.99;
  /// Episodes of experience collected from the policy.
  std::size_t rollout_episodes = 20;
  /// Supervised epochs over the collected (state, return) pairs.
  std::size_t epochs = 10;
  std::size_t batch_size = 128;
  double learning_rate = 1e-3;
  double clip_norm = 5.0;
  /// Seed for minibatch shuffling.
  std::uint64_t seed = 1;
  /// Collect rollout episodes concurrently (CollectValueDatasetParallel)
  /// in the workbench / ensemble paths. Per-episode driver seeding makes
  /// the dataset differ from the serial shared-stream collection, so this
  /// enters the workbench cache key.
  bool parallel_collection = false;
};

/// A collected supervised value-regression dataset.
struct ValueDataset {
  std::vector<mdp::State> states;
  std::vector<double> returns;

  std::size_t Size() const { return states.size(); }
};

/// Rolls out `policy` for `rollout_episodes` and records discounted
/// returns-to-go for every visited state.
ValueDataset CollectValueDataset(mdp::Environment& env, mdp::Policy& policy,
                                 const ValueTrainConfig& config);

/// Builds the environment the given episode rolls out on in the parallel
/// collector (contract mirrors rl::EpisodeEnvFactory: each episode needs
/// its own instance, advanced to that episode's position in the stream).
using RolloutEnvFactory =
    std::function<std::unique_ptr<mdp::Environment>(std::size_t episode)>;

/// Builds the policy driving the given episode. A fresh per-episode
/// instance is required because policies may carry per-episode state and
/// sampling RNGs; derive any sampling seed from the episode index so the
/// episode's trajectory is a function of its index alone.
using RolloutPolicyFactory =
    std::function<std::unique_ptr<mdp::Policy>(std::size_t episode)>;

/// Parallel CollectValueDataset: episodes roll out concurrently on the
/// pool, each on its own environment/policy pair, and the per-episode
/// (state, return) pairs are concatenated in ascending episode order - so
/// the dataset is bit-identical at every pool size. Note a stochastic
/// policy's per-episode seeding makes the sampled trajectories differ from
/// the serial collector's single shared stream; cache keys must reflect
/// which collector produced a dataset.
ValueDataset CollectValueDatasetParallel(
    const RolloutEnvFactory& env_for_episode,
    const RolloutPolicyFactory& policy_for_episode,
    const ValueTrainConfig& config, util::ThreadPool& pool,
    util::ParallelOptions options = {});

/// Fits a value network (1 output) to the dataset; returns the final
/// epoch's mean training loss.
double TrainValueNet(nn::CompositeNet& net, const ValueDataset& dataset,
                     const ValueTrainConfig& config);

}  // namespace osap::rl
