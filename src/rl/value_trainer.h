// External value-function training for the U_V ensemble.
//
// Paper Section 2.4: "even if an agent does not explicitly estimate state
// values, a value function for that agent can still be trained externally
// by observing the history of states, actions, and rewards resulting from
// the agent-environment interaction while training." This trainer does
// exactly that: it rolls out a fixed policy on the training environment,
// computes discounted returns, and regresses V(s) -> return with Adam.
// Ensemble members differ only in network initialization (they share the
// collected experience), matching the paper's setup.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mdp/environment.h"
#include "mdp/policy.h"
#include "nn/sequential.h"

namespace osap::rl {

struct ValueTrainConfig {
  double gamma = 0.99;
  /// Episodes of experience collected from the policy.
  std::size_t rollout_episodes = 20;
  /// Supervised epochs over the collected (state, return) pairs.
  std::size_t epochs = 10;
  std::size_t batch_size = 128;
  double learning_rate = 1e-3;
  double clip_norm = 5.0;
  /// Seed for minibatch shuffling.
  std::uint64_t seed = 1;
};

/// A collected supervised value-regression dataset.
struct ValueDataset {
  std::vector<mdp::State> states;
  std::vector<double> returns;

  std::size_t Size() const { return states.size(); }
};

/// Rolls out `policy` for `rollout_episodes` and records discounted
/// returns-to-go for every visited state.
ValueDataset CollectValueDataset(mdp::Environment& env, mdp::Policy& policy,
                                 const ValueTrainConfig& config);

/// Fits a value network (1 output) to the dataset; returns the final
/// epoch's mean training loss.
double TrainValueNet(nn::CompositeNet& net, const ValueDataset& dataset,
                     const ValueTrainConfig& config);

}  // namespace osap::rl
