#include "rl/value_trainer.h"

#include <algorithm>

#include "mdp/rollout.h"
#include "mdp/trajectory.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "util/check.h"
#include "util/rng.h"

namespace osap::rl {

namespace {

/// Rolls out one episode and appends its (state, return) pairs to `out`.
/// Shared by the serial and parallel collectors so the per-episode math is
/// identical.
void CollectEpisode(mdp::Environment& env, mdp::Policy& policy, double gamma,
                    ValueDataset& out) {
  const mdp::Trajectory trajectory = mdp::Rollout(env, policy);
  std::vector<double> rewards;
  rewards.reserve(trajectory.Length());
  for (const auto& t : trajectory.transitions) rewards.push_back(t.reward);
  const std::vector<double> returns =
      mdp::DiscountedReturns(rewards, gamma);
  for (std::size_t i = 0; i < trajectory.Length(); ++i) {
    out.states.push_back(trajectory.transitions[i].state);
    out.returns.push_back(returns[i]);
  }
}

}  // namespace

ValueDataset CollectValueDataset(mdp::Environment& env, mdp::Policy& policy,
                                 const ValueTrainConfig& config) {
  OSAP_REQUIRE(config.rollout_episodes > 0,
               "CollectValueDataset: need >= 1 episode");
  ValueDataset dataset;
  for (std::size_t e = 0; e < config.rollout_episodes; ++e) {
    CollectEpisode(env, policy, config.gamma, dataset);
  }
  return dataset;
}

ValueDataset CollectValueDatasetParallel(
    const RolloutEnvFactory& env_for_episode,
    const RolloutPolicyFactory& policy_for_episode,
    const ValueTrainConfig& config, util::ThreadPool& pool,
    util::ParallelOptions options) {
  OSAP_REQUIRE(config.rollout_episodes > 0,
               "CollectValueDataset: need >= 1 episode");
  // Episodes land in per-episode buffers and are concatenated in episode
  // order below, so the dataset layout never depends on which thread ran
  // which episode.
  std::vector<ValueDataset> per_episode(config.rollout_episodes);
  if (options.chunk == 0) options.chunk = 1;  // episodes are coarse items
  pool.ParallelFor(
      0, config.rollout_episodes,
      [&](std::size_t e) {
        std::unique_ptr<mdp::Environment> env = env_for_episode(e);
        std::unique_ptr<mdp::Policy> policy = policy_for_episode(e);
        OSAP_REQUIRE(env != nullptr && policy != nullptr,
                     "CollectValueDatasetParallel: null episode env/policy");
        CollectEpisode(*env, *policy, config.gamma, per_episode[e]);
      },
      options);
  ValueDataset dataset;
  for (ValueDataset& episode : per_episode) {
    for (mdp::State& s : episode.states) {
      dataset.states.push_back(std::move(s));
    }
    dataset.returns.insert(dataset.returns.end(), episode.returns.begin(),
                           episode.returns.end());
  }
  return dataset;
}

double TrainValueNet(nn::CompositeNet& net, const ValueDataset& dataset,
                     const ValueTrainConfig& config) {
  OSAP_REQUIRE(net.OutputSize() == 1,
               "TrainValueNet: network must output one value");
  OSAP_REQUIRE(dataset.Size() > 0, "TrainValueNet: empty dataset");
  OSAP_REQUIRE(config.batch_size > 0, "TrainValueNet: batch size must be > 0");

  nn::AdamConfig adam_cfg;
  adam_cfg.learning_rate = config.learning_rate;
  adam_cfg.clip_norm = config.clip_norm;
  nn::Adam optimizer(net.Params(), adam_cfg);

  Rng rng(config.seed);
  std::vector<std::size_t> order(dataset.Size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const std::size_t state_size = dataset.states.front().size();
  double last_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t count =
          std::min(config.batch_size, order.size() - start);
      nn::Matrix batch(count, state_size);
      nn::Matrix target(count, 1);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t idx = order[start + i];
        std::copy(dataset.states[idx].begin(), dataset.states[idx].end(),
                  batch.Row(i).begin());
        target.At(i, 0) = dataset.returns[idx];
      }
      const nn::Matrix pred = net.Forward(batch);
      const nn::LossResult loss = nn::MseLoss(pred, target);
      net.Backward(loss.grad);
      optimizer.Step();
      epoch_loss += loss.loss;
      ++batches;
    }
    last_epoch_loss = epoch_loss / static_cast<double>(batches);
  }
  return last_epoch_loss;
}

}  // namespace osap::rl
