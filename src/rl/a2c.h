// Advantage actor-critic (A2C) training.
//
// Pensieve is trained with A3C (Mnih et al. 2016, reference [29] of the
// paper); A2C is its synchronous form - identical update rule, no
// asynchronous workers - which suits a deterministic single-core
// reproduction. Per episode: roll out the current softmax policy, compute
// discounted returns, advantage = return - V(s), then one Adam step on
//   actor:  -advantage * log pi(a|s) - beta * H(pi)
//   critic: MSE(V(s), return)
// with the entropy weight beta annealed from `entropy_coef_start` to
// `entropy_coef_end` (Pensieve's exploration schedule).
#pragma once

#include <cstdint>
#include <vector>

#include "mdp/environment.h"
#include "nn/actor_critic_net.h"

namespace osap::rl {

struct A2cConfig {
  double gamma = 0.99;
  double actor_learning_rate = 1e-3;
  double critic_learning_rate = 3e-3;
  double entropy_coef_start = 1.0;
  double entropy_coef_end = 0.01;
  std::size_t episodes = 2000;
  /// Standardize advantages per episode batch (stabilizes updates when
  /// rare rebuffer penalties dominate the reward scale).
  bool normalize_advantages = false;
  /// Gradient clip (global norm) for both networks.
  double clip_norm = 5.0;
  /// Seed for action sampling during rollouts.
  std::uint64_t seed = 1;
};

/// Per-episode training record (undiscounted return and episode length).
struct TrainingHistory {
  std::vector<double> episode_rewards;
  std::vector<std::size_t> episode_lengths;

  /// Mean return of the last `n` episodes (or fewer if unavailable).
  double RecentMeanReward(std::size_t n = 50) const;
};

/// Trains the network in-place; returns the training history.
TrainingHistory TrainA2c(nn::ActorCriticNet& net, mdp::Environment& env,
                         const A2cConfig& config);

}  // namespace osap::rl
