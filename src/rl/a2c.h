// Advantage actor-critic (A2C) training.
//
// Pensieve is trained with A3C (Mnih et al. 2016, reference [29] of the
// paper); A2C is its synchronous form - identical update rule, no
// asynchronous workers - which suits a deterministic single-core
// reproduction. Per episode: roll out the current softmax policy, compute
// discounted returns, advantage = return - V(s), then one Adam step on
//   actor:  -advantage * log pi(a|s) - beta * H(pi)
//   critic: MSE(V(s), return)
// with the entropy weight beta annealed from `entropy_coef_start` to
// `entropy_coef_end` (Pensieve's exploration schedule).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mdp/environment.h"
#include "nn/actor_critic_net.h"
#include "util/thread_pool.h"

namespace osap::rl {

struct A2cConfig {
  double gamma = 0.99;
  double actor_learning_rate = 1e-3;
  double critic_learning_rate = 3e-3;
  double entropy_coef_start = 1.0;
  double entropy_coef_end = 0.01;
  std::size_t episodes = 2000;
  /// Standardize advantages per episode batch (stabilizes updates when
  /// rare rebuffer penalties dominate the reward scale).
  bool normalize_advantages = false;
  /// Gradient clip (global norm) for both networks.
  double clip_norm = 5.0;
  /// Seed for action sampling during rollouts.
  std::uint64_t seed = 1;
  /// Episodes collected per synchronous update in TrainA2cParallel: every
  /// update rolls out this many episodes from the same frozen weights
  /// (concurrently when a pool is available), reduces their gradients in
  /// episode order, and applies ONE Adam step. 1 keeps the classic
  /// one-step-per-episode schedule. TrainA2c ignores this field; the
  /// workbench uses > 1 as the switch onto the parallel trainer.
  std::size_t rollouts_per_update = 1;
};

/// Per-episode training record (undiscounted return and episode length).
struct TrainingHistory {
  std::vector<double> episode_rewards;
  std::vector<std::size_t> episode_lengths;

  /// Mean return of the last `n` episodes (or fewer if unavailable).
  double RecentMeanReward(std::size_t n = 50) const;
};

/// Trains the network in-place; returns the training history.
TrainingHistory TrainA2c(nn::ActorCriticNet& net, mdp::Environment& env,
                         const A2cConfig& config);

/// Builds the environment the episode with the given global index rolls out
/// on in TrainA2cParallel. Episodes run concurrently, so each needs its own
/// instance; to reproduce a serial single-environment episode stream,
/// return the shared environment advanced past episodes 0..episode-1
/// (AbrEnvironment::SkipPoolEpisodes), mirroring rl::MemberEnvFactory.
using EpisodeEnvFactory =
    std::function<std::unique_ptr<mdp::Environment>(std::size_t episode)>;

/// Builds a throwaway net with the same topology as the net under training
/// (one per pool slot). The weights do not matter - they are overwritten by
/// a CopyParams sync before every update.
using ActorCriticCloneFactory = std::function<nn::ActorCriticNet()>;

/// Parallel A2C with synchronous batched updates. Each update freezes the
/// weights, collects config.rollouts_per_update episodes on the pool (one
/// per-slot clone serves each worker; every episode samples from its own
/// seed derived from (config.seed, episode index)), reduces the per-episode
/// gradients in ascending episode order, and applies one Adam step per
/// network. Because an episode's rollout and gradients depend only on its
/// global index and the update's frozen weights, results are bit-identical
/// for every pool size (threads=N == threads=1).
///
/// Note this is a different training schedule from TrainA2c whenever
/// rollouts_per_update > 1 (fewer, batched optimizer steps), so trained
/// weights are NOT expected to match the serial trainer - the determinism
/// guarantee is across thread counts, not across schedules.
TrainingHistory TrainA2cParallel(nn::ActorCriticNet& net,
                                 const ActorCriticCloneFactory& clone_net,
                                 const EpisodeEnvFactory& env_for_episode,
                                 const A2cConfig& config,
                                 util::ThreadPool& pool,
                                 util::ParallelOptions options = {});

}  // namespace osap::rl
