// Ensemble training for the U_pi and U_V uncertainty signals.
//
// Paper Section 2.4: ensembles of i agents (or value functions) are trained
// "in the same training environment, where the only difference in the
// training process is the initialization of the neural network variables."
// The factories below take a net builder so the caller controls topology;
// member m is built and trained from a seed derived deterministically from
// (base_seed, m).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mdp/environment.h"
#include "nn/actor_critic_net.h"
#include "rl/a2c.h"
#include "rl/value_trainer.h"
#include "util/thread_pool.h"

namespace osap::rl {

/// Builds a fresh actor-critic network from an initialization RNG.
using ActorCriticFactory = std::function<nn::ActorCriticNet(Rng&)>;

/// Builds a fresh 1-output value network from an initialization RNG.
using ValueNetFactory = std::function<nn::CompositeNet(Rng&)>;

struct AgentEnsembleResult {
  std::vector<std::shared_ptr<nn::ActorCriticNet>> members;
  std::vector<TrainingHistory> histories;
};

/// Trains `size` independently-initialized agents with identical A2C
/// configuration on the same environment.
AgentEnsembleResult TrainAgentEnsemble(std::size_t size,
                                       const ActorCriticFactory& factory,
                                       mdp::Environment& env,
                                       const A2cConfig& config,
                                       std::uint64_t base_seed);

/// Trains `size` independently-initialized value networks on experience
/// collected once from `policy` (shared across members, per the paper).
std::vector<std::shared_ptr<nn::CompositeNet>> TrainValueEnsemble(
    std::size_t size, const ValueNetFactory& factory, mdp::Environment& env,
    mdp::Policy& policy, const ValueTrainConfig& config,
    std::uint64_t base_seed);

/// Builds the environment member m trains on in the parallel variants. To
/// reproduce TrainAgentEnsemble's results bit-exactly, env_for_member(m)
/// must return the shared environment advanced past the episodes members
/// 0..m-1 would already have consumed (AbrEnvironment::SkipPoolEpisodes).
using MemberEnvFactory =
    std::function<std::unique_ptr<mdp::Environment>(std::size_t member)>;

/// Parallel TrainAgentEnsemble: members train concurrently on the pool,
/// each on its own environment from `env_for_member`. Member results are
/// stored by index, so output is bit-identical to the serial variant when
/// the factory satisfies the contract above.
AgentEnsembleResult TrainAgentEnsembleParallel(
    std::size_t size, const ActorCriticFactory& factory,
    const MemberEnvFactory& env_for_member, const A2cConfig& config,
    std::uint64_t base_seed, util::ThreadPool& pool,
    util::ParallelOptions options = {});

/// Builds the environment for (member, episode) in the episode-parallel
/// ensemble trainer below. Same contract as EpisodeEnvFactory, per member.
using MemberEpisodeEnvFactory = std::function<std::unique_ptr<mdp::Environment>(
    std::size_t member, std::size_t episode)>;

/// Episode-parallel TrainAgentEnsemble for config.rollouts_per_update > 1:
/// members train one after another, and within each member the pool
/// collects that update's rollouts concurrently via TrainA2cParallel (the
/// pool is busiest where the work is - episodes outnumber members by orders
/// of magnitude). Member seeds match the other variants; results are
/// bit-identical at every pool size, but NOT to the serial-schedule
/// variants (batched updates are a different schedule; see
/// TrainA2cParallel).
AgentEnsembleResult TrainAgentEnsembleParallel(
    std::size_t size, const ActorCriticFactory& factory,
    const MemberEpisodeEnvFactory& env_for_episode, const A2cConfig& config,
    std::uint64_t base_seed, util::ThreadPool& pool,
    util::ParallelOptions options = {});

/// Parallel TrainValueEnsemble: the dataset is still collected once on the
/// calling thread (it consumes the shared env/policy RNG streams exactly
/// like the serial variant); only the per-member training runs on the
/// pool. Bit-identical to TrainValueEnsemble.
std::vector<std::shared_ptr<nn::CompositeNet>> TrainValueEnsembleParallel(
    std::size_t size, const ValueNetFactory& factory, mdp::Environment& env,
    mdp::Policy& policy, const ValueTrainConfig& config,
    std::uint64_t base_seed, util::ThreadPool& pool,
    util::ParallelOptions options = {});

/// Fully parallel TrainValueEnsemble: the dataset itself is collected on
/// the pool (CollectValueDatasetParallel, per-episode env/policy
/// instances), then the members train on the pool as above. Bit-identical
/// at every pool size, but the dataset differs from the serial collector's
/// shared-stream sampling - cache keys must record which collector ran.
std::vector<std::shared_ptr<nn::CompositeNet>> TrainValueEnsembleParallel(
    std::size_t size, const ValueNetFactory& factory,
    const RolloutEnvFactory& env_for_episode,
    const RolloutPolicyFactory& policy_for_episode,
    const ValueTrainConfig& config, std::uint64_t base_seed,
    util::ThreadPool& pool, util::ParallelOptions options = {});

}  // namespace osap::rl
