// Ensemble training for the U_pi and U_V uncertainty signals.
//
// Paper Section 2.4: ensembles of i agents (or value functions) are trained
// "in the same training environment, where the only difference in the
// training process is the initialization of the neural network variables."
// The factories below take a net builder so the caller controls topology;
// member m is built and trained from a seed derived deterministically from
// (base_seed, m).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mdp/environment.h"
#include "nn/actor_critic_net.h"
#include "rl/a2c.h"
#include "rl/value_trainer.h"

namespace osap::rl {

/// Builds a fresh actor-critic network from an initialization RNG.
using ActorCriticFactory = std::function<nn::ActorCriticNet(Rng&)>;

/// Builds a fresh 1-output value network from an initialization RNG.
using ValueNetFactory = std::function<nn::CompositeNet(Rng&)>;

struct AgentEnsembleResult {
  std::vector<std::shared_ptr<nn::ActorCriticNet>> members;
  std::vector<TrainingHistory> histories;
};

/// Trains `size` independently-initialized agents with identical A2C
/// configuration on the same environment.
AgentEnsembleResult TrainAgentEnsemble(std::size_t size,
                                       const ActorCriticFactory& factory,
                                       mdp::Environment& env,
                                       const A2cConfig& config,
                                       std::uint64_t base_seed);

/// Trains `size` independently-initialized value networks on experience
/// collected once from `policy` (shared across members, per the paper).
std::vector<std::shared_ptr<nn::CompositeNet>> TrainValueEnsemble(
    std::size_t size, const ValueNetFactory& factory, mdp::Environment& env,
    mdp::Policy& policy, const ValueTrainConfig& config,
    std::uint64_t base_seed);

}  // namespace osap::rl
