#include "rl/ensemble.h"

#include "util/check.h"
#include "util/logging.h"

namespace osap::rl {

namespace {

/// Decorrelates member seeds from the base seed.
std::uint64_t MemberSeed(std::uint64_t base, std::size_t member) {
  return base * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL * (member + 1);
}

/// Shared back half of the TrainValueEnsembleParallel variants: members
/// train concurrently on the pool against one shared dataset.
std::vector<std::shared_ptr<nn::CompositeNet>> TrainValueMembersParallel(
    std::size_t size, const ValueNetFactory& factory,
    const ValueDataset& dataset, const ValueTrainConfig& config,
    std::uint64_t base_seed, util::ThreadPool& pool,
    util::ParallelOptions options) {
  std::vector<std::shared_ptr<nn::CompositeNet>> members(size);
  if (options.chunk == 0) options.chunk = 1;  // members are coarse items
  pool.ParallelFor(0, size, [&](std::size_t m) {
    Rng init_rng(MemberSeed(base_seed, m));
    auto net = std::make_shared<nn::CompositeNet>(factory(init_rng));
    ValueTrainConfig member_config = config;
    member_config.seed = MemberSeed(base_seed ^ 0x5A5A5A5AULL, m);
    const double loss = TrainValueNet(*net, dataset, member_config);
    OSAP_LOG(kDebug) << "value ensemble member " << m << " final loss "
                     << loss;
    members[m] = std::move(net);
  }, options);
  return members;
}

}  // namespace

AgentEnsembleResult TrainAgentEnsemble(std::size_t size,
                                       const ActorCriticFactory& factory,
                                       mdp::Environment& env,
                                       const A2cConfig& config,
                                       std::uint64_t base_seed) {
  OSAP_REQUIRE(size > 0, "TrainAgentEnsemble: size must be > 0");
  AgentEnsembleResult result;
  result.members.reserve(size);
  result.histories.reserve(size);
  for (std::size_t m = 0; m < size; ++m) {
    Rng init_rng(MemberSeed(base_seed, m));
    auto net = std::make_shared<nn::ActorCriticNet>(factory(init_rng));
    A2cConfig member_config = config;
    // Each member also explores with its own action-sampling stream; the
    // environment and hyperparameters are identical (paper Section 2.4).
    member_config.seed = MemberSeed(base_seed ^ 0xA5A5A5A5ULL, m);
    result.histories.push_back(TrainA2c(*net, env, member_config));
    OSAP_LOG(kDebug) << "agent ensemble member " << m << " final reward "
                     << result.histories.back().RecentMeanReward(20);
    result.members.push_back(std::move(net));
  }
  return result;
}

AgentEnsembleResult TrainAgentEnsembleParallel(
    std::size_t size, const ActorCriticFactory& factory,
    const MemberEnvFactory& env_for_member, const A2cConfig& config,
    std::uint64_t base_seed, util::ThreadPool& pool,
    util::ParallelOptions options) {
  OSAP_REQUIRE(size > 0, "TrainAgentEnsemble: size must be > 0");
  AgentEnsembleResult result;
  result.members.resize(size);
  result.histories.resize(size);
  if (options.chunk == 0) options.chunk = 1;  // members are coarse items
  pool.ParallelFor(0, size, [&](std::size_t m) {
    Rng init_rng(MemberSeed(base_seed, m));
    auto net = std::make_shared<nn::ActorCriticNet>(factory(init_rng));
    A2cConfig member_config = config;
    member_config.seed = MemberSeed(base_seed ^ 0xA5A5A5A5ULL, m);
    std::unique_ptr<mdp::Environment> env = env_for_member(m);
    OSAP_REQUIRE(env != nullptr, "TrainAgentEnsembleParallel: null env");
    result.histories[m] = TrainA2c(*net, *env, member_config);
    OSAP_LOG(kDebug) << "agent ensemble member " << m << " final reward "
                     << result.histories[m].RecentMeanReward(20);
    result.members[m] = std::move(net);
  }, options);
  return result;
}

AgentEnsembleResult TrainAgentEnsembleParallel(
    std::size_t size, const ActorCriticFactory& factory,
    const MemberEpisodeEnvFactory& env_for_episode, const A2cConfig& config,
    std::uint64_t base_seed, util::ThreadPool& pool,
    util::ParallelOptions options) {
  OSAP_REQUIRE(size > 0, "TrainAgentEnsemble: size must be > 0");
  AgentEnsembleResult result;
  result.members.reserve(size);
  result.histories.reserve(size);
  // Clone weights are overwritten by TrainA2cParallel's per-update sync;
  // only the topology matters, so a fixed scratch seed is fine.
  const ActorCriticCloneFactory clone_net = [&factory]() {
    Rng scratch(0);
    return factory(scratch);
  };
  for (std::size_t m = 0; m < size; ++m) {
    Rng init_rng(MemberSeed(base_seed, m));
    auto net = std::make_shared<nn::ActorCriticNet>(factory(init_rng));
    A2cConfig member_config = config;
    member_config.seed = MemberSeed(base_seed ^ 0xA5A5A5A5ULL, m);
    const EpisodeEnvFactory member_env =
        [&env_for_episode, m](std::size_t episode) {
          return env_for_episode(m, episode);
        };
    result.histories.push_back(TrainA2cParallel(*net, clone_net, member_env,
                                                member_config, pool, options));
    OSAP_LOG(kDebug) << "agent ensemble member " << m << " final reward "
                     << result.histories.back().RecentMeanReward(20);
    result.members.push_back(std::move(net));
  }
  return result;
}

std::vector<std::shared_ptr<nn::CompositeNet>> TrainValueEnsemble(
    std::size_t size, const ValueNetFactory& factory, mdp::Environment& env,
    mdp::Policy& policy, const ValueTrainConfig& config,
    std::uint64_t base_seed) {
  OSAP_REQUIRE(size > 0, "TrainValueEnsemble: size must be > 0");
  // Experience is collected once and shared: members differ only in their
  // weight initialization (and minibatch order).
  const ValueDataset dataset = CollectValueDataset(env, policy, config);
  std::vector<std::shared_ptr<nn::CompositeNet>> members;
  members.reserve(size);
  for (std::size_t m = 0; m < size; ++m) {
    Rng init_rng(MemberSeed(base_seed, m));
    auto net = std::make_shared<nn::CompositeNet>(factory(init_rng));
    ValueTrainConfig member_config = config;
    member_config.seed = MemberSeed(base_seed ^ 0x5A5A5A5AULL, m);
    const double loss = TrainValueNet(*net, dataset, member_config);
    OSAP_LOG(kDebug) << "value ensemble member " << m << " final loss "
                     << loss;
    members.push_back(std::move(net));
  }
  return members;
}

std::vector<std::shared_ptr<nn::CompositeNet>> TrainValueEnsembleParallel(
    std::size_t size, const ValueNetFactory& factory, mdp::Environment& env,
    mdp::Policy& policy, const ValueTrainConfig& config,
    std::uint64_t base_seed, util::ThreadPool& pool,
    util::ParallelOptions options) {
  OSAP_REQUIRE(size > 0, "TrainValueEnsemble: size must be > 0");
  const ValueDataset dataset = CollectValueDataset(env, policy, config);
  return TrainValueMembersParallel(size, factory, dataset, config, base_seed,
                                   pool, options);
}

std::vector<std::shared_ptr<nn::CompositeNet>> TrainValueEnsembleParallel(
    std::size_t size, const ValueNetFactory& factory,
    const RolloutEnvFactory& env_for_episode,
    const RolloutPolicyFactory& policy_for_episode,
    const ValueTrainConfig& config, std::uint64_t base_seed,
    util::ThreadPool& pool, util::ParallelOptions options) {
  OSAP_REQUIRE(size > 0, "TrainValueEnsemble: size must be > 0");
  const ValueDataset dataset = CollectValueDatasetParallel(
      env_for_episode, policy_for_episode, config, pool, options);
  return TrainValueMembersParallel(size, factory, dataset, config, base_seed,
                                   pool, options);
}

}  // namespace osap::rl
