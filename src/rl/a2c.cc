#include "rl/a2c.h"

#include <algorithm>
#include <cmath>

#include "mdp/trajectory.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "util/check.h"
#include "util/rng.h"

namespace osap::rl {

double TrainingHistory::RecentMeanReward(std::size_t n) const {
  if (episode_rewards.empty()) return 0.0;
  const std::size_t count = std::min(n, episode_rewards.size());
  double sum = 0.0;
  for (std::size_t i = episode_rewards.size() - count;
       i < episode_rewards.size(); ++i) {
    sum += episode_rewards[i];
  }
  return sum / static_cast<double>(count);
}

namespace {

int SampleAction(std::span<const double> probs, Rng& rng) {
  const double u = rng.Uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(probs.size()) - 1;
}

/// Entropy annealing schedule shared by both trainers: linear from start to
/// end across the episode index.
double EntropyCoef(const A2cConfig& config, std::size_t episode) {
  const double progress = config.episodes <= 1
                              ? 1.0
                              : static_cast<double>(episode) /
                                    static_cast<double>(config.episodes - 1);
  return config.entropy_coef_start +
         progress * (config.entropy_coef_end - config.entropy_coef_start);
}

/// Decorrelates per-episode sampling seeds from the config seed (same
/// mixing constants as the ensemble's MemberSeed).
std::uint64_t EpisodeSeed(std::uint64_t base, std::size_t episode) {
  return base * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL * (episode + 1);
}

/// Rolls out one episode with softmax sampling and ACCUMULATES the actor
/// and critic gradients into `net`'s params - no optimizer step. Both
/// trainers run episodes through this one body, so their per-episode
/// accumulation chains are identical by construction.
void AccumulateEpisodeGradients(nn::ActorCriticNet& net, mdp::Environment& env,
                                const A2cConfig& config, double entropy_coef,
                                Rng& rng, double* total_reward,
                                std::size_t* length) {
  OSAP_REQUIRE(net.StateSize() == env.StateSize(),
               "TrainA2c: network/environment state size mismatch");
  OSAP_REQUIRE(net.ActionCount() == env.ActionCount(),
               "TrainA2c: network/environment action count mismatch");
  // Roll out the current policy with softmax sampling.
  std::vector<mdp::State> states;
  std::vector<int> actions;
  std::vector<double> rewards;
  mdp::State state = env.Reset();
  bool done = false;
  std::vector<double> probs(net.ActionCount());
  while (!done) {
    net.ActionProbsInto(state, probs);
    const int action = SampleAction(probs, rng);
    mdp::StepResult step = env.Step(action);
    states.push_back(std::move(state));
    actions.push_back(action);
    rewards.push_back(step.reward);
    state = std::move(step.next_state);
    done = step.done;
  }
  const std::size_t n = states.size();
  OSAP_CHECK_MSG(n > 0, "TrainA2c: empty episode");

  // Batch the episode.
  nn::Matrix batch(n, env.StateSize());
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(states[i].begin(), states[i].end(), batch.Row(i).begin());
  }
  const std::vector<double> returns =
      mdp::DiscountedReturns(rewards, config.gamma);
  nn::Matrix target(n, 1);
  for (std::size_t i = 0; i < n; ++i) target.At(i, 0) = returns[i];

  // Critic forward (also yields the advantage baseline).
  const nn::Matrix values = net.CriticValues(batch);
  std::vector<double> advantages(n);
  for (std::size_t i = 0; i < n; ++i) {
    advantages[i] = returns[i] - values.At(i, 0);
  }
  if (config.normalize_advantages && n > 1) {
    // Zero-mean / unit-std advantages stabilize the policy gradient when
    // rare, large rebuffer penalties dominate the reward scale.
    double mean = 0.0;
    for (double a : advantages) mean += a;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double a : advantages) var += (a - mean) * (a - mean);
    var /= static_cast<double>(n);
    const double stddev = std::sqrt(std::max(var, 1e-12));
    for (double& a : advantages) a = (a - mean) / stddev;
  }

  // Actor gradients.
  const nn::Matrix logits = net.ActorLogits(batch);
  const nn::LossResult actor_loss =
      nn::PolicyGradientLoss(logits, actions, advantages, entropy_coef);
  net.ActorBackward(actor_loss.grad);

  // Critic gradients (values were computed above from the same forward
  // pass, so Backward matches the cached activations).
  const nn::LossResult critic_loss = nn::MseLoss(values, target);
  net.CriticBackward(critic_loss.grad);

  double total = 0.0;
  for (double r : rewards) total += r;
  *total_reward = total;
  *length = n;
}

}  // namespace

TrainingHistory TrainA2c(nn::ActorCriticNet& net, mdp::Environment& env,
                         const A2cConfig& config) {
  OSAP_REQUIRE(config.episodes > 0, "TrainA2c: episodes must be > 0");
  OSAP_REQUIRE(config.gamma >= 0.0 && config.gamma <= 1.0,
               "TrainA2c: gamma must be in [0, 1]");
  OSAP_REQUIRE(net.StateSize() == env.StateSize(),
               "TrainA2c: network/environment state size mismatch");
  OSAP_REQUIRE(net.ActionCount() == env.ActionCount(),
               "TrainA2c: network/environment action count mismatch");

  nn::AdamConfig actor_cfg;
  actor_cfg.learning_rate = config.actor_learning_rate;
  actor_cfg.clip_norm = config.clip_norm;
  nn::Adam actor_opt(net.ActorParams(), actor_cfg);
  nn::AdamConfig critic_cfg;
  critic_cfg.learning_rate = config.critic_learning_rate;
  critic_cfg.clip_norm = config.clip_norm;
  nn::Adam critic_opt(net.CriticParams(), critic_cfg);

  Rng rng(config.seed);
  TrainingHistory history;
  history.episode_rewards.reserve(config.episodes);

  for (std::size_t episode = 0; episode < config.episodes; ++episode) {
    double total = 0.0;
    std::size_t n = 0;
    AccumulateEpisodeGradients(net, env, config, EntropyCoef(config, episode),
                               rng, &total, &n);
    // One optimizer step per episode (the classic schedule). Adam zeroes
    // the gradients after stepping, so the next episode accumulates into
    // clean buffers.
    actor_opt.Step();
    critic_opt.Step();
    history.episode_rewards.push_back(total);
    history.episode_lengths.push_back(n);
  }
  return history;
}

TrainingHistory TrainA2cParallel(nn::ActorCriticNet& net,
                                 const ActorCriticCloneFactory& clone_net,
                                 const EpisodeEnvFactory& env_for_episode,
                                 const A2cConfig& config,
                                 util::ThreadPool& pool,
                                 util::ParallelOptions options) {
  OSAP_REQUIRE(config.episodes > 0, "TrainA2cParallel: episodes must be > 0");
  OSAP_REQUIRE(config.gamma >= 0.0 && config.gamma <= 1.0,
               "TrainA2cParallel: gamma must be in [0, 1]");
  const std::size_t rollouts =
      std::max<std::size_t>(1, config.rollouts_per_update);

  nn::AdamConfig actor_cfg;
  actor_cfg.learning_rate = config.actor_learning_rate;
  actor_cfg.clip_norm = config.clip_norm;
  nn::Adam actor_opt(net.ActorParams(), actor_cfg);
  nn::AdamConfig critic_cfg;
  critic_cfg.learning_rate = config.critic_learning_rate;
  critic_cfg.clip_norm = config.clip_norm;
  nn::Adam critic_opt(net.CriticParams(), critic_cfg);

  const std::vector<nn::Param*> main_params = net.AllParams();

  // One clone per scratch slot; each participating thread rolls out on the
  // clone addressed by its CurrentSlot(), and the clones are resynced to
  // the main weights before every update.
  std::vector<std::unique_ptr<nn::ActorCriticNet>> clones;
  clones.reserve(pool.SlotCount());
  for (std::size_t s = 0; s < pool.SlotCount(); ++s) {
    clones.push_back(std::make_unique<nn::ActorCriticNet>(clone_net()));
  }

  if (options.chunk == 0) options.chunk = 1;  // episodes are coarse items

  TrainingHistory history;
  history.episode_rewards.resize(config.episodes);
  history.episode_lengths.resize(config.episodes);

  for (std::size_t start = 0; start < config.episodes; start += rollouts) {
    const std::size_t count = std::min(rollouts, config.episodes - start);
    for (const auto& clone : clones) {
      nn::CopyParams(main_params, clone->AllParams());
    }
    // Gradients are buffered per EPISODE, not per slot: which slot serves
    // an episode depends on scheduling, so reducing per-slot partials
    // would tie the floating-point sum order to the thread count. The
    // per-episode copies let the reduction below run in ascending episode
    // order no matter which thread collected what.
    std::vector<std::vector<nn::Matrix>> episode_grads(count);
    pool.ParallelFor(
        0, count,
        [&](std::size_t e) {
          const std::size_t episode = start + e;
          nn::ActorCriticNet& clone = *clones[util::ThreadPool::CurrentSlot()];
          const std::vector<nn::Param*> params = clone.AllParams();
          nn::ZeroGrads(params);
          std::unique_ptr<mdp::Environment> env = env_for_episode(episode);
          OSAP_REQUIRE(env != nullptr, "TrainA2cParallel: null episode env");
          Rng rng(EpisodeSeed(config.seed, episode));
          double total = 0.0;
          std::size_t n = 0;
          AccumulateEpisodeGradients(clone, *env, config,
                                     EntropyCoef(config, episode), rng,
                                     &total, &n);
          std::vector<nn::Matrix>& grads = episode_grads[e];
          grads.reserve(params.size());
          for (const nn::Param* p : params) grads.push_back(p->grad);
          history.episode_rewards[episode] = total;
          history.episode_lengths[episode] = n;
        },
        options);
    // Fixed-order reduction: episode gradients join the sum in ascending
    // episode order, so the accumulation chain (and thus every bit of the
    // update) is independent of the pool size.
    for (std::size_t e = 0; e < count; ++e) {
      for (std::size_t k = 0; k < main_params.size(); ++k) {
        main_params[k]->grad.AddInPlace(episode_grads[e][k]);
      }
    }
    actor_opt.Step();
    critic_opt.Step();
  }
  return history;
}

}  // namespace osap::rl
