#include "rl/a2c.h"

#include <algorithm>
#include <cmath>

#include "mdp/trajectory.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "util/check.h"
#include "util/rng.h"

namespace osap::rl {

double TrainingHistory::RecentMeanReward(std::size_t n) const {
  if (episode_rewards.empty()) return 0.0;
  const std::size_t count = std::min(n, episode_rewards.size());
  double sum = 0.0;
  for (std::size_t i = episode_rewards.size() - count;
       i < episode_rewards.size(); ++i) {
    sum += episode_rewards[i];
  }
  return sum / static_cast<double>(count);
}

namespace {

int SampleAction(std::span<const double> probs, Rng& rng) {
  const double u = rng.Uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(probs.size()) - 1;
}

}  // namespace

TrainingHistory TrainA2c(nn::ActorCriticNet& net, mdp::Environment& env,
                         const A2cConfig& config) {
  OSAP_REQUIRE(config.episodes > 0, "TrainA2c: episodes must be > 0");
  OSAP_REQUIRE(config.gamma >= 0.0 && config.gamma <= 1.0,
               "TrainA2c: gamma must be in [0, 1]");
  OSAP_REQUIRE(net.StateSize() == env.StateSize(),
               "TrainA2c: network/environment state size mismatch");
  OSAP_REQUIRE(net.ActionCount() == env.ActionCount(),
               "TrainA2c: network/environment action count mismatch");

  nn::AdamConfig actor_cfg;
  actor_cfg.learning_rate = config.actor_learning_rate;
  actor_cfg.clip_norm = config.clip_norm;
  nn::Adam actor_opt(net.ActorParams(), actor_cfg);
  nn::AdamConfig critic_cfg;
  critic_cfg.learning_rate = config.critic_learning_rate;
  critic_cfg.clip_norm = config.clip_norm;
  nn::Adam critic_opt(net.CriticParams(), critic_cfg);

  Rng rng(config.seed);
  TrainingHistory history;
  history.episode_rewards.reserve(config.episodes);

  for (std::size_t episode = 0; episode < config.episodes; ++episode) {
    // Roll out the current policy with softmax sampling.
    std::vector<mdp::State> states;
    std::vector<int> actions;
    std::vector<double> rewards;
    mdp::State state = env.Reset();
    bool done = false;
    while (!done) {
      const std::vector<double> probs = net.ActionProbs(state);
      const int action = SampleAction(probs, rng);
      mdp::StepResult step = env.Step(action);
      states.push_back(std::move(state));
      actions.push_back(action);
      rewards.push_back(step.reward);
      state = std::move(step.next_state);
      done = step.done;
    }
    const std::size_t n = states.size();
    OSAP_CHECK_MSG(n > 0, "TrainA2c: empty episode");

    // Batch the episode.
    nn::Matrix batch(n, env.StateSize());
    for (std::size_t i = 0; i < n; ++i) {
      std::copy(states[i].begin(), states[i].end(), batch.Row(i).begin());
    }
    const std::vector<double> returns =
        mdp::DiscountedReturns(rewards, config.gamma);
    nn::Matrix target(n, 1);
    for (std::size_t i = 0; i < n; ++i) target.At(i, 0) = returns[i];

    // Critic forward (also yields the advantage baseline).
    const nn::Matrix values = net.CriticValues(batch);
    std::vector<double> advantages(n);
    for (std::size_t i = 0; i < n; ++i) {
      advantages[i] = returns[i] - values.At(i, 0);
    }
    if (config.normalize_advantages && n > 1) {
      // Zero-mean / unit-std advantages stabilize the policy gradient when
      // rare, large rebuffer penalties dominate the reward scale.
      double mean = 0.0;
      for (double a : advantages) mean += a;
      mean /= static_cast<double>(n);
      double var = 0.0;
      for (double a : advantages) var += (a - mean) * (a - mean);
      var /= static_cast<double>(n);
      const double stddev = std::sqrt(std::max(var, 1e-12));
      for (double& a : advantages) a = (a - mean) / stddev;
    }

    // Entropy annealing across episodes.
    const double progress = config.episodes <= 1
                                ? 1.0
                                : static_cast<double>(episode) /
                                      static_cast<double>(config.episodes - 1);
    const double entropy_coef =
        config.entropy_coef_start +
        progress * (config.entropy_coef_end - config.entropy_coef_start);

    // Actor step.
    const nn::Matrix logits = net.ActorLogits(batch);
    const nn::LossResult actor_loss =
        nn::PolicyGradientLoss(logits, actions, advantages, entropy_coef);
    net.ActorBackward(actor_loss.grad);
    actor_opt.Step();

    // Critic step (values were computed above from the same forward pass,
    // so Backward matches the cached activations).
    const nn::LossResult critic_loss = nn::MseLoss(values, target);
    net.CriticBackward(critic_loss.grad);
    critic_opt.Step();

    double total = 0.0;
    for (double r : rewards) total += r;
    history.episode_rewards.push_back(total);
    history.episode_lengths.push_back(n);
  }
  return history;
}

}  // namespace osap::rl
