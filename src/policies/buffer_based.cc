#include "policies/buffer_based.h"

#include <cmath>

#include "util/check.h"

namespace osap::policies {

BufferBasedPolicy::BufferBasedPolicy(const abr::VideoSpec& video,
                                     const abr::AbrStateLayout& layout,
                                     BufferBasedConfig config)
    : level_count_(video.LevelCount()), layout_(layout), config_(config) {
  OSAP_REQUIRE(config_.reservoir_seconds > 0.0,
               "BufferBased: reservoir must be > 0");
  OSAP_REQUIRE(config_.cushion_seconds > 0.0,
               "BufferBased: cushion must be > 0");
}

std::size_t BufferBasedPolicy::LevelForBuffer(double buffer_seconds) const {
  if (buffer_seconds < config_.reservoir_seconds) return 0;
  if (buffer_seconds >=
      config_.reservoir_seconds + config_.cushion_seconds) {
    return level_count_ - 1;
  }
  // Linear interpolation across the cushion region.
  const double fraction =
      (buffer_seconds - config_.reservoir_seconds) / config_.cushion_seconds;
  const auto level = static_cast<std::size_t>(
      fraction * static_cast<double>(level_count_ - 1));
  return std::min(level, level_count_ - 1);
}

mdp::Action BufferBasedPolicy::SelectAction(const mdp::State& state) {
  OSAP_REQUIRE(state.size() == layout_.Size(),
               "BufferBased: state size mismatch");
  return static_cast<mdp::Action>(
      LevelForBuffer(layout_.BufferSeconds(state)));
}

}  // namespace osap::policies
