// Model-predictive-control ABR (following Yin et al., SIGCOMM '15 -
// reference [63], the paper QoE metric's origin): at each step, predict
// throughput with a harmonic mean of recent measurements, then exhaustively
// search all bitrate sequences over a short horizon for the one maximizing
// predicted QoE. Included as an additional strong baseline / alternative
// default policy (paper Section 5 future work).
#pragma once

#include <functional>

#include "abr/qoe.h"
#include "abr/state.h"
#include "abr/video.h"
#include "mdp/policy.h"

namespace osap::policies {

/// Sentinel "previous level" for the lookahead root, where the previous
/// bitrate comes from the session state rather than the bitrate ladder.
inline constexpr std::size_t kNoPrevLevel = static_cast<std::size_t>(-1);

struct MpcConfig {
  /// Lookahead horizon in chunks. Cost grows as levels^horizon; 5 with a
  /// 6-level ladder = 7776 sequences per decision.
  std::size_t horizon = 5;
  /// Throughput taps for the harmonic-mean predictor.
  std::size_t window = 5;
  /// RobustMPC-style discount on the throughput prediction (1.0 = plain
  /// MPC; < 1.0 = conservative).
  double prediction_discount = 1.0;
  /// RTT added per chunk when predicting download times.
  double rtt_seconds = 0.08;
  /// Memoize per-chunk download times, bitrates, and smoothness deltas
  /// once per decision instead of recomputing them in every node of the
  /// levels^horizon enumeration. Bit-identical either way (the tables
  /// hold the same expressions the recursion evaluated inline); the flag
  /// exists so tests can pin the equivalence.
  bool memoize = true;
};

class MpcPolicy final : public mdp::Policy {
 public:
  /// Produces the throughput forecast (Mbps) the lookahead plans against.
  /// The default is the harmonic mean of recent measurements; a learned
  /// predictor can be plugged in instead (Fugu-style control, see
  /// policies/predictive.h).
  using ThroughputEstimator = std::function<double(const mdp::State&)>;

  MpcPolicy(const abr::VideoSpec& video, const abr::AbrStateLayout& layout,
            abr::QoeConfig qoe = {}, MpcConfig config = {},
            ThroughputEstimator estimator = nullptr);

  mdp::Action SelectAction(const mdp::State& state) override;
  std::string Name() const override { return "mpc"; }

 private:
  ThroughputEstimator estimator_;
  const abr::VideoSpec* video_;
  abr::AbrStateLayout layout_;
  abr::QoeConfig qoe_;
  MpcConfig config_;

  // Per-decision lookahead tables (policies are per-thread):
  // download_[d * levels + l] = predicted download seconds of chunk0 + d
  // at level l, bitrate_[l] = BitrateMbps(l), smooth_[p * levels + l] =
  // the smoothness term when switching p -> l.
  std::vector<double> download_;
  std::vector<double> bitrate_;
  std::vector<double> smooth_;

  /// Predicted QoE of the best sequence starting with each first-chunk
  /// level; used recursively.
  double BestQoe(double buffer_seconds, double prev_bitrate_mbps,
                 std::size_t chunk, std::size_t depth,
                 double predicted_mbps, std::size_t* best_first_level) const;

  /// Memoized variant reading the per-decision tables. `prev_level` is
  /// the previous chunk's level, or kNoPrevLevel at depth 0 (where the
  /// previous bitrate comes from the state, not the ladder).
  double BestQoeMemoized(double buffer_seconds, std::size_t prev_level,
                         double prev_bitrate_mbps, std::size_t chunk,
                         std::size_t depth,
                         std::size_t* best_first_level) const;
  void FillLookaheadTables(std::size_t chunk, double predicted_mbps);
};

}  // namespace osap::policies
