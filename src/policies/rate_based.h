// Rate-based heuristic: picks the highest ladder rung below a conservative
// throughput estimate (harmonic mean of the recent measured chunk
// throughputs). Not used by the paper's headline comparison but a standard
// ABR baseline; included as an additional default-policy option (the paper's
// future-work section calls for studying other default policies).
#pragma once

#include "abr/state.h"
#include "abr/video.h"
#include "mdp/policy.h"

namespace osap::policies {

struct RateBasedConfig {
  /// Number of recent throughput taps considered (capped by the layout's
  /// history length).
  std::size_t window = 5;
  /// Safety factor applied to the throughput estimate.
  double safety_factor = 1.0;
};

class RateBasedPolicy final : public mdp::Policy {
 public:
  RateBasedPolicy(const abr::VideoSpec& video,
                  const abr::AbrStateLayout& layout,
                  RateBasedConfig config = {});

  mdp::Action SelectAction(const mdp::State& state) override;
  std::string Name() const override { return "rate_based"; }

  /// Harmonic-mean throughput estimate over the last `window` taps with
  /// non-zero samples; 0 when no tap has data yet.
  double EstimateThroughputMbps(const mdp::State& state) const;

 private:
  const abr::VideoSpec* video_;
  abr::AbrStateLayout layout_;
  RateBasedConfig config_;
};

}  // namespace osap::policies
