#include "policies/mpc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace osap::policies {

MpcPolicy::MpcPolicy(const abr::VideoSpec& video,
                     const abr::AbrStateLayout& layout, abr::QoeConfig qoe,
                     MpcConfig config, ThroughputEstimator estimator)
    : estimator_(std::move(estimator)),
      video_(&video),
      layout_(layout),
      qoe_(qoe),
      config_(config) {
  OSAP_REQUIRE(config_.horizon > 0, "Mpc: horizon must be > 0");
  OSAP_REQUIRE(config_.window > 0, "Mpc: window must be > 0");
  OSAP_REQUIRE(config_.prediction_discount > 0.0 &&
                   config_.prediction_discount <= 1.0,
               "Mpc: prediction discount must be in (0, 1]");
}

double MpcPolicy::BestQoe(double buffer_seconds, double prev_bitrate_mbps,
                          std::size_t chunk, std::size_t depth,
                          double predicted_mbps,
                          std::size_t* best_first_level) const {
  if (depth == config_.horizon || chunk >= video_->ChunkCount()) {
    return 0.0;
  }
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_level = 0;
  for (std::size_t level = 0; level < video_->LevelCount(); ++level) {
    const double bytes = video_->ChunkBytes(chunk, level);
    const double download =
        config_.rtt_seconds + bytes * 8.0 / 1e6 / predicted_mbps;
    const double rebuffer = std::max(0.0, download - buffer_seconds);
    const double next_buffer =
        std::max(0.0, buffer_seconds - download) + video_->ChunkSeconds();
    const double bitrate = video_->BitrateMbps(level);
    const double smooth =
        prev_bitrate_mbps > 0.0 ? std::abs(bitrate - prev_bitrate_mbps) : 0.0;
    const double reward = bitrate - qoe_.rebuffer_penalty * rebuffer -
                          qoe_.smoothness_penalty * smooth;
    const double future = BestQoe(next_buffer, bitrate, chunk + 1, depth + 1,
                                  predicted_mbps, nullptr);
    if (reward + future > best) {
      best = reward + future;
      best_level = level;
    }
  }
  if (best_first_level != nullptr) *best_first_level = best_level;
  return best;
}

void MpcPolicy::FillLookaheadTables(std::size_t chunk, double predicted_mbps) {
  const std::size_t levels = video_->LevelCount();
  if (bitrate_.size() != levels) {
    bitrate_.resize(levels);
    for (std::size_t level = 0; level < levels; ++level) {
      bitrate_[level] = video_->BitrateMbps(level);
    }
    smooth_.resize(levels * levels);
    for (std::size_t prev = 0; prev < levels; ++prev) {
      for (std::size_t level = 0; level < levels; ++level) {
        smooth_[prev * levels + level] =
            bitrate_[prev] > 0.0 ? std::abs(bitrate_[level] - bitrate_[prev])
                                 : 0.0;
      }
    }
  }
  download_.resize(config_.horizon * levels);
  for (std::size_t depth = 0; depth < config_.horizon; ++depth) {
    const std::size_t c = chunk + depth;
    // The recursion stops at ChunkCount(), so rows past the end of the
    // video are never read.
    if (c >= video_->ChunkCount()) break;
    for (std::size_t level = 0; level < levels; ++level) {
      const double bytes = video_->ChunkBytes(c, level);
      download_[depth * levels + level] =
          config_.rtt_seconds + bytes * 8.0 / 1e6 / predicted_mbps;
    }
  }
}

double MpcPolicy::BestQoeMemoized(double buffer_seconds, std::size_t prev_level,
                                  double prev_bitrate_mbps, std::size_t chunk,
                                  std::size_t depth,
                                  std::size_t* best_first_level) const {
  if (depth == config_.horizon || chunk >= video_->ChunkCount()) {
    return 0.0;
  }
  const std::size_t levels = video_->LevelCount();
  const double* download = download_.data() + depth * levels;
  const double* smooth_row = prev_level == kNoPrevLevel
                                 ? nullptr
                                 : smooth_.data() + prev_level * levels;
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_level = 0;
  for (std::size_t level = 0; level < levels; ++level) {
    const double download_s = download[level];
    const double rebuffer = std::max(0.0, download_s - buffer_seconds);
    const double next_buffer =
        std::max(0.0, buffer_seconds - download_s) + video_->ChunkSeconds();
    const double bitrate = bitrate_[level];
    const double smooth =
        smooth_row != nullptr
            ? smooth_row[level]
            : (prev_bitrate_mbps > 0.0 ? std::abs(bitrate - prev_bitrate_mbps)
                                       : 0.0);
    const double reward = bitrate - qoe_.rebuffer_penalty * rebuffer -
                          qoe_.smoothness_penalty * smooth;
    const double future = BestQoeMemoized(next_buffer, level, bitrate,
                                          chunk + 1, depth + 1, nullptr);
    if (reward + future > best) {
      best = reward + future;
      best_level = level;
    }
  }
  if (best_first_level != nullptr) *best_first_level = best_level;
  return best;
}

mdp::Action MpcPolicy::SelectAction(const mdp::State& state) {
  OSAP_REQUIRE(state.size() == layout_.Size(), "Mpc: state size mismatch");
  double forecast = 0.0;
  if (estimator_ != nullptr) {
    forecast = estimator_(state);
  } else {
    // Harmonic-mean throughput estimate over the newest taps with data.
    const std::size_t taps = std::min(config_.window, layout_.history);
    double inv_sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < taps; ++i) {
      const double mbps =
          layout_.ThroughputMbps(state, layout_.history - 1 - i);
      if (mbps > 0.0) {
        inv_sum += 1.0 / mbps;
        ++count;
      }
    }
    if (count == 0) return 0;  // no measurements yet: safest rung
    forecast = static_cast<double>(count) / inv_sum;
  }
  if (forecast <= 0.0) return 0;
  const double predicted = config_.prediction_discount * forecast;

  const double buffer = layout_.BufferSeconds(state);
  const double prev_bitrate =
      layout_.LastBitrateFraction(state) * video_->MaxBitrateMbps();
  // Next chunk index from the remaining-fraction field.
  const double remaining = layout_.RemainingFraction(state);
  const auto chunk = static_cast<std::size_t>(std::llround(
      static_cast<double>(video_->ChunkCount()) * (1.0 - remaining)));

  std::size_t best_level = 0;
  const std::size_t chunk0 = std::min(chunk, video_->ChunkCount() - 1);
  const double floored = std::max(predicted, 1e-3);
  if (config_.memoize) {
    FillLookaheadTables(chunk0, floored);
    BestQoeMemoized(buffer, kNoPrevLevel, prev_bitrate, chunk0, 0,
                    &best_level);
  } else {
    BestQoe(buffer, prev_bitrate, chunk0, 0, floored, &best_level);
  }
  return static_cast<mdp::Action>(best_level);
}

}  // namespace osap::policies
