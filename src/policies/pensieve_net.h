// Pensieve network construction (Mao et al., SIGCOMM '17, Section 5.2).
//
// Actor and critic share the same topology over the Pensieve state
// encoding, differing only in the head (softmax over ladder levels vs a
// single value):
//   - last-bitrate, buffer and chunks-remaining scalars each pass through
//     a small dense branch;
//   - the throughput history, download-time history and next-chunk-size
//     vectors each pass through a 1-D convolution branch;
//   - branch outputs are concatenated into a dense trunk.
// The reference implementation uses 128 conv filters / 128 hidden units;
// we default to 32/64, which trains in seconds on one CPU core while
// preserving the in-distribution-win / out-of-distribution-loss behaviour
// the paper studies (see DESIGN.md section 2).
#pragma once

#include <memory>

#include "abr/state.h"
#include "mdp/value_function.h"
#include "nn/actor_critic_net.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace osap::policies {

struct PensieveNetConfig {
  std::size_t conv_filters = 16;
  std::size_t conv_kernel = 4;
  std::size_t hidden = 32;
};

/// Builds the Pensieve topology with `output_size` head units (ladder-size
/// logits for the actor, 1 for critic/value networks).
nn::CompositeNet BuildPensieveNet(const abr::AbrStateLayout& layout,
                                  std::size_t output_size,
                                  const PensieveNetConfig& config, Rng& rng);

/// A freshly-initialized actor-critic pair (independent weights).
nn::ActorCriticNet MakePensieveActorCritic(const abr::AbrStateLayout& layout,
                                           const PensieveNetConfig& config,
                                           Rng& rng);

/// mdp::ValueFunction adapter over a value network (used both for critics
/// and for the external U_V ensemble members).
class NetValueFunction final : public mdp::ValueFunction {
 public:
  explicit NetValueFunction(nn::CompositeNet net);

  double Value(const mdp::State& state) override;

  nn::CompositeNet& net() { return net_; }
  std::vector<nn::Param*> Params() { return net_.Params(); }

 private:
  nn::CompositeNet net_;
};

}  // namespace osap::policies
