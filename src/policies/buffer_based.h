// Buffer-Based (BB) rate adaptation (Huang et al., SIGCOMM '14) - the
// paper's default ("safe") policy. BB ignores throughput entirely and maps
// the current buffer occupancy to a bitrate: lowest rung below a reservoir,
// highest above reservoir+cushion, linear in between. The reservoir/cushion
// values (5 s / 10 s) follow the Pensieve reference implementation the
// paper reuses.
#pragma once

#include "abr/state.h"
#include "abr/video.h"
#include "mdp/policy.h"

namespace osap::policies {

struct BufferBasedConfig {
  double reservoir_seconds = 5.0;
  double cushion_seconds = 10.0;
};

class BufferBasedPolicy final : public mdp::Policy {
 public:
  /// Needs the video ladder (to map the rate region to levels) and the
  /// state layout (to read the buffer level from observations).
  BufferBasedPolicy(const abr::VideoSpec& video,
                    const abr::AbrStateLayout& layout,
                    BufferBasedConfig config = {});

  mdp::Action SelectAction(const mdp::State& state) override;
  std::string Name() const override { return "buffer_based"; }

  /// The pure mapping, exposed for tests: buffer seconds -> ladder level.
  std::size_t LevelForBuffer(double buffer_seconds) const;

 private:
  std::size_t level_count_;
  abr::AbrStateLayout layout_;
  BufferBasedConfig config_;
};

}  // namespace osap::policies
