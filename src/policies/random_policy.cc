#include "policies/random_policy.h"

#include "util/check.h"

namespace osap::policies {

RandomPolicy::RandomPolicy(std::size_t action_count, std::uint64_t seed)
    : action_count_(action_count), rng_(seed) {
  OSAP_REQUIRE(action_count > 0, "RandomPolicy: need >= 1 action");
}

mdp::Action RandomPolicy::SelectAction(const mdp::State& /*state*/) {
  return static_cast<mdp::Action>(rng_.UniformInt(action_count_));
}

std::vector<double> RandomPolicy::ActionDistribution(
    const mdp::State& /*state*/) {
  return std::vector<double>(action_count_,
                             1.0 / static_cast<double>(action_count_));
}

}  // namespace osap::policies
