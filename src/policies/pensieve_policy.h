// The learned ABR policy: a Pensieve actor-critic network exposed as an
// mdp::StochasticPolicy. During training rollouts the policy samples from
// the actor's softmax (exploration); during evaluation it picks the argmax
// action, matching how Pensieve is deployed.
#pragma once

#include <memory>

#include "mdp/policy.h"
#include "nn/actor_critic_net.h"
#include "util/rng.h"

namespace osap::policies {

enum class ActionSelection {
  kSample,  // draw from the softmax (training-time exploration)
  kGreedy,  // argmax (deployment / evaluation)
};

class PensievePolicy final : public mdp::StochasticPolicy {
 public:
  /// Shares the network (ensembles hold several policies over several
  /// nets; trainers mutate the net the policy observes).
  PensievePolicy(std::shared_ptr<nn::ActorCriticNet> net,
                 ActionSelection selection, std::uint64_t seed);

  mdp::Action SelectAction(const mdp::State& state) override;
  std::vector<double> ActionDistribution(const mdp::State& state) override;
  std::string Name() const override { return "pensieve"; }

  nn::ActorCriticNet& net() { return *net_; }
  const std::shared_ptr<nn::ActorCriticNet>& shared_net() const { return net_; }
  void set_selection(ActionSelection selection) { selection_ = selection; }
  ActionSelection selection() const { return selection_; }

 private:
  std::shared_ptr<nn::ActorCriticNet> net_;
  ActionSelection selection_;
  Rng rng_;
  // Per-decision distribution scratch: SelectAction is allocation-free
  // after the first call (policies are per-thread, so no sharing).
  std::vector<double> probs_;
};

}  // namespace osap::policies
