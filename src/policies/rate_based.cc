#include "policies/rate_based.h"

#include <algorithm>

#include "util/check.h"

namespace osap::policies {

RateBasedPolicy::RateBasedPolicy(const abr::VideoSpec& video,
                                 const abr::AbrStateLayout& layout,
                                 RateBasedConfig config)
    : video_(&video), layout_(layout), config_(config) {
  OSAP_REQUIRE(config_.window > 0, "RateBased: window must be > 0");
  OSAP_REQUIRE(config_.safety_factor > 0.0,
               "RateBased: safety factor must be > 0");
}

double RateBasedPolicy::EstimateThroughputMbps(
    const mdp::State& state) const {
  const std::size_t taps = std::min(config_.window, layout_.history);
  double inv_sum = 0.0;
  std::size_t count = 0;
  // Newest taps are at the end of the history range.
  for (std::size_t i = 0; i < taps; ++i) {
    const double mbps =
        layout_.ThroughputMbps(state, layout_.history - 1 - i);
    if (mbps > 0.0) {
      inv_sum += 1.0 / mbps;
      ++count;
    }
  }
  if (count == 0) return 0.0;
  return static_cast<double>(count) / inv_sum;
}

mdp::Action RateBasedPolicy::SelectAction(const mdp::State& state) {
  OSAP_REQUIRE(state.size() == layout_.Size(),
               "RateBased: state size mismatch");
  const double estimate =
      EstimateThroughputMbps(state) * config_.safety_factor;
  // Highest rung sustainable at the estimate; lowest rung when nothing
  // fits (or before any measurement).
  std::size_t level = 0;
  for (std::size_t l = 0; l < video_->LevelCount(); ++l) {
    if (video_->BitrateMbps(l) <= estimate) level = l;
  }
  return static_cast<mdp::Action>(level);
}

}  // namespace osap::policies
