// Throughput-predictor ABR: the other deep-learning ABR family the paper
// discusses (CS2P [49], Fugu/"learning in situ" [61]). Instead of learning
// a control policy end-to-end, a neural regressor predicts the next
// chunk's throughput from the observation history and a simple controller
// picks the highest sustainable bitrate.
//
// The predictor inherits the same deployment hazard as Pensieve: trained
// on one throughput distribution, its regressions revert toward the
// training range when the deployment distribution shifts, and the
// controller overshoots. Because the U_S safety net watches the *input*
// (observed throughput), the very same fitted NoveltyDetector that guards
// Pensieve also guards this policy - OSAP is agent-agnostic on the input
// side (paper Section 2.4).
#pragma once

#include <memory>

#include "abr/abr_environment.h"
#include "mdp/policy.h"
#include "nn/sequential.h"
#include "policies/mpc.h"
#include "rl/value_trainer.h"
#include "util/rng.h"

namespace osap::policies {

struct PredictiveAbrConfig {
  std::size_t hidden = 32;
  /// Discount applied to the prediction before planning (the controller's
  /// conservatism; Fugu uses prediction uncertainty instead).
  double safety_factor = 0.9;
  /// The MPC lookahead the predictions feed (Fugu couples its predictor
  /// with model-predictive control).
  MpcConfig control;
  rl::ValueTrainConfig training;
};

/// Supervised next-chunk-throughput regressor over the Pensieve state.
class ThroughputPredictor {
 public:
  ThroughputPredictor(const abr::AbrStateLayout& layout,
                      const PredictiveAbrConfig& config, Rng& rng);

  /// Collects (state, next measured chunk throughput) pairs by streaming
  /// every trace once with `driver` (typically BufferBased - the labels
  /// must not depend on the policy being trained).
  static rl::ValueDataset CollectDataset(
      abr::AbrEnvironment& env, mdp::Policy& driver,
      std::span<const traces::Trace> traces_);

  /// Fits the regressor; returns the final epoch's mean MSE loss.
  double Train(const rl::ValueDataset& dataset);

  /// Predicted next-chunk throughput (Mbps), floored at a small positive.
  double Predict(const mdp::State& state);

  nn::CompositeNet& net() { return net_; }

 private:
  PredictiveAbrConfig config_;
  nn::CompositeNet net_;
};

/// The controller: MPC lookahead planning against the learned forecast
/// (Fugu's control structure). The video reference must outlive the
/// policy.
class PredictiveAbrPolicy final : public mdp::Policy {
 public:
  PredictiveAbrPolicy(std::shared_ptr<ThroughputPredictor> predictor,
                      const abr::VideoSpec& video,
                      const abr::AbrStateLayout& layout,
                      PredictiveAbrConfig config = {});

  mdp::Action SelectAction(const mdp::State& state) override;
  std::string Name() const override { return "predictive_abr"; }

 private:
  std::shared_ptr<ThroughputPredictor> predictor_;
  MpcPolicy control_;
};

}  // namespace osap::policies
