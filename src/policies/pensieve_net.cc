#include "policies/pensieve_net.h"

#include <algorithm>

#include "util/check.h"

namespace osap::policies {

namespace {

/// Dense branch for a single scalar input column.
nn::Sequential ScalarBranch(std::size_t width, std::size_t filters,
                            Rng& rng) {
  nn::Sequential seq;
  seq.AddLinearReLU(width, filters, rng);
  return seq;
}

/// Conv1D branch over a history/size vector (single input channel).
nn::Sequential ConvBranch(std::size_t length, std::size_t filters,
                          std::size_t kernel, Rng& rng) {
  nn::Sequential seq;
  auto conv = std::make_unique<nn::Conv1D>(/*in_channels=*/1, filters,
                                           kernel, length, rng);
  const std::size_t out = conv->OutputSize();
  seq.Add(std::move(conv));
  seq.Add(std::make_unique<nn::ReLU>(out));
  return seq;
}

}  // namespace

nn::CompositeNet BuildPensieveNet(const abr::AbrStateLayout& layout,
                                  std::size_t output_size,
                                  const PensieveNetConfig& config, Rng& rng) {
  OSAP_REQUIRE(output_size > 0, "BuildPensieveNet: output size must be > 0");
  OSAP_REQUIRE(config.conv_kernel <= layout.levels &&
                   config.conv_kernel <= layout.history,
               "BuildPensieveNet: conv kernel must fit the shortest vector");
  const std::size_t f = config.conv_filters;
  nn::CompositeNet net;
  net.AddBranch(layout.LastBitrateIndex(), 1, ScalarBranch(1, f, rng));
  net.AddBranch(layout.BufferIndex(), 1, ScalarBranch(1, f, rng));
  net.AddBranch(layout.ThroughputBegin(), layout.history,
                ConvBranch(layout.history, f, config.conv_kernel, rng));
  net.AddBranch(layout.DownloadTimeBegin(), layout.history,
                ConvBranch(layout.history, f, config.conv_kernel, rng));
  net.AddBranch(layout.NextSizesBegin(), layout.levels,
                ConvBranch(layout.levels, f, config.conv_kernel, rng));
  net.AddBranch(layout.RemainingIndex(), 1, ScalarBranch(1, f, rng));

  const std::size_t concat =
      f * (3 + (layout.history - config.conv_kernel + 1) * 2 +
           (layout.levels - config.conv_kernel + 1));
  nn::Sequential trunk;
  trunk.AddLinearReLU(concat, config.hidden, rng);
  trunk.Add(std::make_unique<nn::Linear>(config.hidden, output_size, rng));
  net.SetTrunk(std::move(trunk));
  return net;
}

nn::ActorCriticNet MakePensieveActorCritic(const abr::AbrStateLayout& layout,
                                           const PensieveNetConfig& config,
                                           Rng& rng) {
  nn::CompositeNet actor =
      BuildPensieveNet(layout, layout.levels, config, rng);
  nn::CompositeNet critic = BuildPensieveNet(layout, 1, config, rng);
  return nn::ActorCriticNet(std::move(actor), std::move(critic));
}

NetValueFunction::NetValueFunction(nn::CompositeNet net)
    : net_(std::move(net)) {
  OSAP_REQUIRE(net_.OutputSize() == 1,
               "NetValueFunction: network must output one value");
}

double NetValueFunction::Value(const mdp::State& state) {
  OSAP_REQUIRE(state.size() == net_.InputSize(),
               "NetValueFunction: state size mismatch");
  // Cache-free inference path: no mutable net state is touched, so a value
  // net shared across worker threads can be queried concurrently.
  thread_local nn::InferScratch scratch;
  thread_local nn::Matrix row;
  row.ReshapeUninitialized(1, state.size());
  std::copy(state.begin(), state.end(), row.data());
  return net_.Infer(row, scratch).At(0, 0);
}

}  // namespace osap::policies
