// The "Random" baseline of Section 3.3: selects the next bitrate uniformly
// at random. Its score anchors the paper's normalized performance scale
// (Random = 0, BB = 1).
#pragma once

#include "mdp/policy.h"
#include "util/rng.h"

namespace osap::policies {

class RandomPolicy final : public mdp::StochasticPolicy {
 public:
  RandomPolicy(std::size_t action_count, std::uint64_t seed);

  mdp::Action SelectAction(const mdp::State& state) override;
  std::vector<double> ActionDistribution(const mdp::State& state) override;
  std::string Name() const override { return "random"; }

 private:
  std::size_t action_count_;
  Rng rng_;
};

}  // namespace osap::policies
