#include "policies/predictive.h"

#include <algorithm>

#include "util/check.h"

namespace osap::policies {

namespace {

nn::CompositeNet BuildRegressor(const abr::AbrStateLayout& layout,
                                std::size_t hidden, Rng& rng) {
  nn::CompositeNet net;
  nn::Sequential branch;
  branch.AddLinearReLU(layout.Size(), hidden, rng);
  branch.AddLinearReLU(hidden, hidden / 2, rng);
  net.AddBranch(0, layout.Size(), std::move(branch));
  nn::Sequential trunk;
  trunk.Add(std::make_unique<nn::Linear>(hidden / 2, 1, rng));
  net.SetTrunk(std::move(trunk));
  return net;
}

}  // namespace

ThroughputPredictor::ThroughputPredictor(const abr::AbrStateLayout& layout,
                                         const PredictiveAbrConfig& config,
                                         Rng& rng)
    : config_(config), net_(BuildRegressor(layout, config.hidden, rng)) {
  OSAP_REQUIRE(config.hidden >= 2, "ThroughputPredictor: hidden >= 2");
}

rl::ValueDataset ThroughputPredictor::CollectDataset(
    abr::AbrEnvironment& env, mdp::Policy& driver,
    std::span<const traces::Trace> traces_) {
  OSAP_REQUIRE(!traces_.empty(),
               "ThroughputPredictor::CollectDataset: no traces");
  rl::ValueDataset dataset;
  for (const traces::Trace& trace : traces_) {
    env.SetFixedTrace(trace);
    driver.Reset();
    mdp::State state = env.Reset();
    bool done = false;
    while (!done) {
      const mdp::StepResult result = env.Step(driver.SelectAction(state));
      // Label: the throughput the *next* download experienced, i.e. what
      // a deployed predictor would be asked for in `state`.
      dataset.states.push_back(state);
      dataset.returns.push_back(env.LastDownload().throughput_mbps);
      state = result.next_state;
      done = result.done;
    }
  }
  return dataset;
}

double ThroughputPredictor::Train(const rl::ValueDataset& dataset) {
  return rl::TrainValueNet(net_, dataset, config_.training);
}

double ThroughputPredictor::Predict(const mdp::State& state) {
  const double predicted =
      net_.Forward(nn::Matrix::RowVector(state)).At(0, 0);
  return std::max(predicted, 0.05);
}

PredictiveAbrPolicy::PredictiveAbrPolicy(
    std::shared_ptr<ThroughputPredictor> predictor,
    const abr::VideoSpec& video, const abr::AbrStateLayout& layout,
    PredictiveAbrConfig config)
    : predictor_(std::move(predictor)),
      control_(video, layout, abr::QoeConfig{}, config.control,
               // The learned forecast, discounted by the safety factor.
               [p = predictor_, f = config.safety_factor](
                   const mdp::State& s) { return f * p->Predict(s); }) {
  OSAP_REQUIRE(predictor_ != nullptr, "PredictiveAbrPolicy: null predictor");
  OSAP_REQUIRE(config.safety_factor > 0.0,
               "PredictiveAbrPolicy: safety factor must be > 0");
}

mdp::Action PredictiveAbrPolicy::SelectAction(const mdp::State& state) {
  return control_.SelectAction(state);
}

}  // namespace osap::policies
