#include "policies/pensieve_policy.h"

#include <algorithm>

#include "util/check.h"

namespace osap::policies {

PensievePolicy::PensievePolicy(std::shared_ptr<nn::ActorCriticNet> net,
                               ActionSelection selection, std::uint64_t seed)
    : net_(std::move(net)), selection_(selection), rng_(seed) {
  OSAP_REQUIRE(net_ != nullptr, "PensievePolicy: null network");
}

std::vector<double> PensievePolicy::ActionDistribution(
    const mdp::State& state) {
  return net_->ActionProbs(state);
}

mdp::Action PensievePolicy::SelectAction(const mdp::State& state) {
  probs_.resize(net_->ActionCount());
  net_->ActionProbsInto(state, probs_);
  if (selection_ == ActionSelection::kGreedy) {
    return static_cast<mdp::Action>(std::distance(
        probs_.begin(), std::max_element(probs_.begin(), probs_.end())));
  }
  // Inverse-CDF sampling; the final bucket absorbs rounding slack.
  const double u = rng_.Uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    if (u < acc) return static_cast<mdp::Action>(i);
  }
  return static_cast<mdp::Action>(probs_.size() - 1);
}

}  // namespace osap::policies
