// Datasets: named collections of traces with the paper's train/test split
// (70%/30%, with 30% of the training set held out for validation,
// Section 3.1). A DatasetId enumerates the six distributions the paper
// evaluates; BuildDataset deterministically materializes one from a seed.
#pragma once

#include <string>
#include <vector>

#include "traces/generators.h"
#include "traces/trace.h"

namespace osap::traces {

/// The six distributions evaluated in the paper (Section 3.1).
enum class DatasetId {
  kNorway3g = 0,     // 3G/HSDPA mobile dataset stand-in [40]
  kBelgium4g = 1,    // 4G/LTE mobile dataset stand-in [58]
  kGamma12 = 2,      // Gamma(shape=1, scale=2)
  kGamma22 = 3,      // Gamma(shape=2, scale=2)
  kLogistic = 4,     // Logistic(mu=4, scale=0.5)
  kExponential = 5,  // Exponential(scale=1)
};

/// All six ids in the paper's presentation order.
std::vector<DatasetId> AllDatasetIds();

/// Short stable name, e.g. "norway", "gamma_2_2".
std::string DatasetName(DatasetId id);

/// Human-readable label, e.g. "Norway 3G/HSDPA", "Gamma(2,2)".
std::string DatasetLabel(DatasetId id);

/// True for the four i.i.d. synthetic distributions; the paper uses a
/// longer ND window (k = 30 instead of 5) for these.
bool IsSyntheticIid(DatasetId id);

/// The generator for a dataset id.
std::unique_ptr<TraceGenerator> MakeGenerator(DatasetId id);

/// A materialized dataset with the paper's splits.
struct Dataset {
  DatasetId id{};
  std::string name;
  std::vector<Trace> train;
  std::vector<Trace> validation;
  std::vector<Trace> test;

  std::size_t TotalTraces() const {
    return train.size() + validation.size() + test.size();
  }
};

struct DatasetConfig {
  /// Traces generated per dataset before splitting.
  std::size_t trace_count = 40;
  /// Seconds of throughput per trace. Must cover a meaningful fraction of
  /// the 240-chunk (~960 s) video; traces wrap when shorter.
  double trace_duration_seconds = 320.0;
  /// Base seed; the dataset id is mixed in so datasets are independent.
  std::uint64_t seed = 2020;
};

/// Deterministically builds a dataset: generates `trace_count` traces and
/// splits 70/30 into train/test, then holds out 30% of train as validation.
Dataset BuildDataset(DatasetId id, const DatasetConfig& config = {});

}  // namespace osap::traces
