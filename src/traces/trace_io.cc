#include "traces/trace_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/check.h"
#include "util/csv.h"

namespace osap::traces {

namespace {

constexpr double kPacketBytes = 1500.0;
constexpr double kMinMbps = 0.01;

}  // namespace

void WriteCsvTrace(const Trace& trace, const std::filesystem::path& path) {
  CsvWriter writer(path);
  writer.WriteHeader({"seconds", "mbps"});
  double t = 0.0;
  for (double mbps : trace.samples()) {
    writer.WriteNumericRow({t, mbps});
    t += trace.interval_seconds();
  }
}

Trace ReadCsvTrace(const std::filesystem::path& path) {
  const auto rows = ReadCsv(path);
  OSAP_REQUIRE(rows.size() >= 2, "ReadCsvTrace: no data rows in " +
                                     path.string());
  std::vector<double> samples;
  samples.reserve(rows.size() - 1);
  double interval = 1.0;
  double prev_time = 0.0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    OSAP_REQUIRE(rows[i].size() == 2,
                 "ReadCsvTrace: expected `seconds,mbps` rows");
    const double t = ParseDouble(rows[i][0]);
    if (i == 2) interval = t - prev_time;
    prev_time = t;
    samples.push_back(ParseDouble(rows[i][1]));
  }
  return Trace(path.stem().string(), interval > 0.0 ? interval : 1.0,
               std::move(samples));
}

void WriteMahimahiTrace(const Trace& trace,
                        const std::filesystem::path& path) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("WriteMahimahiTrace: cannot open " +
                             path.string());
  }
  // Emit one line per packet opportunity. Within each sample interval,
  // opportunities are spaced evenly; fractional packets carry over so the
  // long-run rate matches the trace exactly.
  double carry_packets = 0.0;
  double t_ms = 0.0;
  for (double mbps : trace.samples()) {
    const double interval_ms = trace.interval_seconds() * 1000.0;
    // Mbps -> bytes/ms -> packets in this interval.
    const double bytes_per_ms = mbps * 1e6 / 8.0 / 1000.0;
    double packets = bytes_per_ms * interval_ms / kPacketBytes + carry_packets;
    const auto whole = static_cast<std::size_t>(packets);
    carry_packets = packets - static_cast<double>(whole);
    for (std::size_t p = 0; p < whole; ++p) {
      const double ts =
          t_ms + interval_ms * (static_cast<double>(p) + 0.5) /
                     static_cast<double>(whole);
      out << static_cast<long long>(std::llround(ts)) << '\n';
    }
    t_ms += interval_ms;
  }
  if (!out) throw std::runtime_error("WriteMahimahiTrace: write failed");
}

Trace ReadMahimahiTrace(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ReadMahimahiTrace: cannot open " +
                             path.string());
  }
  std::vector<long long> timestamps;
  long long ts = 0;
  while (in >> ts) {
    OSAP_REQUIRE(ts >= 0, "ReadMahimahiTrace: negative timestamp");
    timestamps.push_back(ts);
  }
  OSAP_REQUIRE(!timestamps.empty(), "ReadMahimahiTrace: empty trace file");
  std::sort(timestamps.begin(), timestamps.end());
  const auto seconds =
      static_cast<std::size_t>(timestamps.back() / 1000) + 1;
  std::vector<double> samples(seconds, 0.0);
  for (long long t : timestamps) {
    samples[static_cast<std::size_t>(t / 1000)] += kPacketBytes * 8.0 / 1e6;
  }
  for (double& s : samples) s = std::max(s, kMinMbps);
  return Trace(path.stem().string(), 1.0, std::move(samples));
}

void WriteTraceDirectory(const std::vector<Trace>& traces,
                         const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    WriteCsvTrace(traces[i], dir / (std::to_string(i) + ".csv"));
  }
}

std::vector<Trace> ReadTraceDirectory(const std::filesystem::path& dir) {
  OSAP_REQUIRE(std::filesystem::is_directory(dir),
               "ReadTraceDirectory: not a directory: " + dir.string());
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".csv") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::vector<Trace> traces;
  traces.reserve(files.size());
  for (const auto& f : files) traces.push_back(ReadCsvTrace(f));
  return traces;
}

}  // namespace osap::traces
