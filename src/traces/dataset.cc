#include "traces/dataset.h"

#include <memory>

#include "util/check.h"

namespace osap::traces {

std::vector<DatasetId> AllDatasetIds() {
  return {DatasetId::kNorway3g,  DatasetId::kBelgium4g,
          DatasetId::kGamma12,   DatasetId::kGamma22,
          DatasetId::kLogistic,  DatasetId::kExponential};
}

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kNorway3g:
      return "norway";
    case DatasetId::kBelgium4g:
      return "belgium";
    case DatasetId::kGamma12:
      return "gamma_1_2";
    case DatasetId::kGamma22:
      return "gamma_2_2";
    case DatasetId::kLogistic:
      return "logistic";
    case DatasetId::kExponential:
      return "exponential";
  }
  OSAP_CHECK_MSG(false, "DatasetName: unknown id");
  return {};
}

std::string DatasetLabel(DatasetId id) {
  switch (id) {
    case DatasetId::kNorway3g:
      return "Norway 3G/HSDPA";
    case DatasetId::kBelgium4g:
      return "Belgium 4G/LTE";
    case DatasetId::kGamma12:
      return "Gamma(1,2)";
    case DatasetId::kGamma22:
      return "Gamma(2,2)";
    case DatasetId::kLogistic:
      return "Logistic(4,0.5)";
    case DatasetId::kExponential:
      return "Exponential(1)";
  }
  OSAP_CHECK_MSG(false, "DatasetLabel: unknown id");
  return {};
}

bool IsSyntheticIid(DatasetId id) {
  switch (id) {
    case DatasetId::kNorway3g:
    case DatasetId::kBelgium4g:
      return false;
    case DatasetId::kGamma12:
    case DatasetId::kGamma22:
    case DatasetId::kLogistic:
    case DatasetId::kExponential:
      return true;
  }
  OSAP_CHECK_MSG(false, "IsSyntheticIid: unknown id");
  return false;
}

std::unique_ptr<TraceGenerator> MakeGenerator(DatasetId id) {
  switch (id) {
    case DatasetId::kNorway3g:
      return MakeNorway3gGenerator();
    case DatasetId::kBelgium4g:
      return MakeBelgium4gGenerator();
    case DatasetId::kGamma12:
      return std::make_unique<IidTraceGenerator>(
          std::make_shared<GammaDistribution>(1.0, 2.0));
    case DatasetId::kGamma22:
      return std::make_unique<IidTraceGenerator>(
          std::make_shared<GammaDistribution>(2.0, 2.0));
    case DatasetId::kLogistic:
      return std::make_unique<IidTraceGenerator>(
          std::make_shared<LogisticDistribution>(4.0, 0.5));
    case DatasetId::kExponential:
      return std::make_unique<IidTraceGenerator>(
          std::make_shared<ExponentialDistribution>(1.0));
  }
  OSAP_CHECK_MSG(false, "MakeGenerator: unknown id");
  return nullptr;
}

Dataset BuildDataset(DatasetId id, const DatasetConfig& config) {
  OSAP_REQUIRE(config.trace_count >= 4,
               "BuildDataset: need >= 4 traces for meaningful splits");
  const auto generator = MakeGenerator(id);
  // Mix the id into the seed so datasets draw from independent streams.
  Rng rng(config.seed * 0x9E3779B97F4A7C15ULL +
          static_cast<std::uint64_t>(id) + 1);
  std::vector<Trace> traces;
  traces.reserve(config.trace_count);
  for (std::size_t i = 0; i < config.trace_count; ++i) {
    Rng trace_rng = rng.Fork();
    traces.push_back(
        generator->Generate(trace_rng, config.trace_duration_seconds, i));
  }
  Dataset ds;
  ds.id = id;
  ds.name = DatasetName(id);
  // 70/30 train/test split, then 30% of train held out for validation
  // (paper Section 3.1). Generation order is random, so a prefix split is
  // an unbiased split.
  const auto train_total =
      static_cast<std::size_t>(0.7 * static_cast<double>(traces.size()));
  const auto validation_count =
      static_cast<std::size_t>(0.3 * static_cast<double>(train_total));
  const std::size_t train_count = train_total - validation_count;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i < train_count) {
      ds.train.push_back(std::move(traces[i]));
    } else if (i < train_total) {
      ds.validation.push_back(std::move(traces[i]));
    } else {
      ds.test.push_back(std::move(traces[i]));
    }
  }
  OSAP_CHECK(!ds.train.empty() && !ds.test.empty());
  return ds;
}

}  // namespace osap::traces
