#include "traces/generators.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace osap::traces {

namespace {

std::string TraceName(const std::string& generator, std::size_t index) {
  std::ostringstream os;
  os << generator << "/trace-" << index;
  return os.str();
}

}  // namespace

IidTraceGenerator::IidTraceGenerator(
    std::shared_ptr<const Distribution> distribution, double floor_mbps,
    double cap_mbps)
    : distribution_(std::move(distribution)),
      floor_mbps_(floor_mbps),
      cap_mbps_(cap_mbps) {
  OSAP_REQUIRE(distribution_ != nullptr, "IidTraceGenerator: null distribution");
  OSAP_REQUIRE(floor_mbps > 0.0, "IidTraceGenerator: floor must be > 0");
  OSAP_REQUIRE(cap_mbps > floor_mbps, "IidTraceGenerator: cap must be > floor");
}

Trace IidTraceGenerator::Generate(Rng& rng, double duration_seconds,
                                  std::size_t index) const {
  OSAP_REQUIRE(duration_seconds >= 1.0,
               "IidTraceGenerator: duration must be >= 1s");
  const auto count = static_cast<std::size_t>(duration_seconds);
  std::vector<double> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    samples.push_back(
        std::clamp(distribution_->Sample(rng), floor_mbps_, cap_mbps_));
  }
  return Trace(TraceName(Name(), index), 1.0, std::move(samples));
}

std::string IidTraceGenerator::Name() const { return distribution_->Name(); }

MarkovModulatedGenerator::MarkovModulatedGenerator(
    std::string name, std::vector<Regime> regimes,
    std::vector<std::vector<double>> transition, double floor_mbps,
    double cap_mbps)
    : name_(std::move(name)),
      regimes_(std::move(regimes)),
      transition_(std::move(transition)),
      floor_mbps_(floor_mbps),
      cap_mbps_(cap_mbps) {
  OSAP_REQUIRE(!regimes_.empty(), "MarkovModulatedGenerator: no regimes");
  OSAP_REQUIRE(transition_.size() == regimes_.size(),
               "MarkovModulatedGenerator: transition rows != regimes");
  for (const auto& row : transition_) {
    OSAP_REQUIRE(row.size() == regimes_.size(),
                 "MarkovModulatedGenerator: transition must be square");
    double sum = 0.0;
    for (double p : row) {
      OSAP_REQUIRE(p >= 0.0, "MarkovModulatedGenerator: negative probability");
      sum += p;
    }
    OSAP_REQUIRE(std::abs(sum - 1.0) < 1e-9,
                 "MarkovModulatedGenerator: transition rows must sum to 1");
  }
  for (const Regime& r : regimes_) {
    OSAP_REQUIRE(r.median_mbps > 0.0,
                 "MarkovModulatedGenerator: regime median must be > 0");
    OSAP_REQUIRE(r.log_sigma >= 0.0,
                 "MarkovModulatedGenerator: log_sigma must be >= 0");
  }
  OSAP_REQUIRE(floor_mbps > 0.0 && cap_mbps > floor_mbps,
               "MarkovModulatedGenerator: bad clamp range");
}

Trace MarkovModulatedGenerator::Generate(Rng& rng, double duration_seconds,
                                         std::size_t index) const {
  OSAP_REQUIRE(duration_seconds >= 1.0,
               "MarkovModulatedGenerator: duration must be >= 1s");
  const auto count = static_cast<std::size_t>(duration_seconds);
  std::vector<double> samples;
  samples.reserve(count);
  // Start in a uniformly random regime so traces differ in their opening
  // conditions, as real commute traces do.
  std::size_t regime = rng.UniformInt(regimes_.size());
  for (std::size_t t = 0; t < count; ++t) {
    const Regime& r = regimes_[regime];
    const double mu = std::log(r.median_mbps);
    const double value = std::exp(rng.Normal(mu, r.log_sigma));
    samples.push_back(std::clamp(value, floor_mbps_, cap_mbps_));
    // Advance the regime chain.
    const double u = rng.Uniform();
    double acc = 0.0;
    for (std::size_t j = 0; j < transition_[regime].size(); ++j) {
      acc += transition_[regime][j];
      if (u < acc) {
        regime = j;
        break;
      }
    }
  }
  return Trace(TraceName(name_, index), 1.0, std::move(samples));
}

std::unique_ptr<TraceGenerator> MakeNorway3gGenerator() {
  // Four regimes: deep fade (tunnels/underpasses), low, medium, high -
  // sticky chains with mostly-adjacent transitions, matching the structure
  // of the HSDPA commute traces (bus/ferry/train/car).
  std::vector<Regime> regimes = {
      {0.12, 0.45},  // deep fade
      {0.70, 0.40},  // low
      {2.00, 0.35},  // medium
      {4.50, 0.30},  // high
  };
  std::vector<std::vector<double>> transition = {
      {0.85, 0.13, 0.02, 0.00},
      {0.06, 0.84, 0.09, 0.01},
      {0.01, 0.08, 0.84, 0.07},
      {0.00, 0.02, 0.10, 0.88},
  };
  return std::make_unique<MarkovModulatedGenerator>(
      "Norway3G", std::move(regimes), std::move(transition),
      /*floor_mbps=*/0.05, /*cap_mbps=*/8.0);
}

std::unique_ptr<TraceGenerator> MakeBelgium4gGenerator() {
  // 4G/LTE: higher levels and larger within-regime variance; throughput is
  // rescaled into the bitrate-ladder range as in the Pensieve evaluation
  // (the raw dataset peaks near 90 Mbps, which would make every ABR policy
  // trivially pick the top rung).
  std::vector<Regime> regimes = {
      {0.90, 0.55},  // congested / indoor
      {3.20, 0.45},  // urban driving
      {6.00, 0.40},  // good coverage
      {8.50, 0.35},  // near-cell peak
  };
  std::vector<std::vector<double>> transition = {
      {0.80, 0.16, 0.03, 0.01},
      {0.08, 0.78, 0.12, 0.02},
      {0.02, 0.10, 0.78, 0.10},
      {0.01, 0.04, 0.15, 0.80},
  };
  return std::make_unique<MarkovModulatedGenerator>(
      "Belgium4G", std::move(regimes), std::move(transition),
      /*floor_mbps=*/0.05, /*cap_mbps=*/12.0);
}

}  // namespace osap::traces
