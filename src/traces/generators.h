// Trace generators for the paper's six datasets.
//
// The four synthetic datasets are i.i.d. per-second throughput draws from
// Gamma(1,2), Gamma(2,2), Logistic(4,0.5) and Exponential(1) (paper
// Section 3.1). The two empirical datasets (Norway 3G/HSDPA [40] and
// Belgium 4G/LTE [58]) are not redistributable here, so we substitute
// seeded Markov-modulated generators that preserve the characteristics the
// paper relies on: temporal correlation, regime switching (fades/bursts)
// and dataset-specific throughput ranges (see DESIGN.md section 2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "traces/trace.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace osap::traces {

/// Interface: produces one trace of the requested duration per call.
class TraceGenerator {
 public:
  virtual ~TraceGenerator() = default;

  /// Generates a trace with ~duration_seconds of samples. The trace name
  /// embeds `index` so datasets get stable, distinct member names.
  virtual Trace Generate(Rng& rng, double duration_seconds,
                         std::size_t index) const = 0;

  virtual std::string Name() const = 0;
};

/// I.i.d. per-second draws from a distribution, clamped to
/// [floor_mbps, cap_mbps] so the simulator never divides by zero and
/// pathological tail draws cannot dwarf the video bitrate ladder.
class IidTraceGenerator final : public TraceGenerator {
 public:
  IidTraceGenerator(std::shared_ptr<const Distribution> distribution,
                    double floor_mbps = 0.05, double cap_mbps = 50.0);

  Trace Generate(Rng& rng, double duration_seconds,
                 std::size_t index) const override;
  std::string Name() const override;

 private:
  std::shared_ptr<const Distribution> distribution_;
  double floor_mbps_;
  double cap_mbps_;
};

/// A throughput regime of a Markov-modulated generator: per-second samples
/// are lognormal around the regime level while the chain stays in it.
struct Regime {
  double median_mbps;  // lognormal median (exp(mu))
  double log_sigma;    // lognormal sigma (per-second jitter inside regime)
};

/// Markov-modulated lognormal generator: a hidden regime chain with a
/// row-stochastic transition matrix; models the fade/burst structure of
/// real cellular traces.
class MarkovModulatedGenerator final : public TraceGenerator {
 public:
  /// transition[i][j] = P(next regime = j | current = i); each row must sum
  /// to ~1 and the sizes must match regimes.size().
  MarkovModulatedGenerator(std::string name, std::vector<Regime> regimes,
                           std::vector<std::vector<double>> transition,
                           double floor_mbps = 0.05, double cap_mbps = 50.0);

  Trace Generate(Rng& rng, double duration_seconds,
                 std::size_t index) const override;
  std::string Name() const override { return name_; }

 private:
  std::string name_;
  std::vector<Regime> regimes_;
  std::vector<std::vector<double>> transition_;
  double floor_mbps_;
  double cap_mbps_;
};

/// 3G/HSDPA commute-path profile (Riiser et al. [40] stand-in): low mean,
/// deep fades, sticky regimes.
std::unique_ptr<TraceGenerator> MakeNorway3gGenerator();

/// 4G/LTE profile (van der Hooft et al. [58] stand-in), rescaled to the
/// bitrate-ladder range as in the Pensieve evaluation: higher mean, high
/// variance, mobility-driven regime switching.
std::unique_ptr<TraceGenerator> MakeBelgium4gGenerator();

}  // namespace osap::traces
