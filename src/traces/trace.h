// Network throughput traces.
//
// A Trace is a piecewise-constant throughput series (Mbps) sampled on a
// fixed interval, the representation used by the paper's datasets (Norway
// 3G/HSDPA commute traces, Belgium 4G/LTE traces, and the four synthetic
// i.i.d. distributions of Section 3.1). The ABR simulator integrates over a
// trace to determine chunk download times; traces wrap around when a video
// outlasts them, following Pensieve's simulator convention.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace osap::traces {

class Trace {
 public:
  Trace() = default;

  /// A named trace with per-interval throughput samples (Mbps).
  /// interval_seconds must be > 0 and every sample must be > 0.
  Trace(std::string name, double interval_seconds,
        std::vector<double> throughput_mbps);

  const std::string& name() const { return name_; }
  double interval_seconds() const { return interval_seconds_; }
  const std::vector<double>& samples() const { return throughput_mbps_; }
  std::size_t SampleCount() const { return throughput_mbps_.size(); }

  /// Total covered duration in seconds.
  double Duration() const;

  /// Throughput (Mbps) at an absolute time; the trace repeats cyclically,
  /// so any non-negative time is valid.
  double ThroughputAt(double time_seconds) const;

  /// Mean throughput over one cycle.
  double MeanThroughput() const;

 private:
  std::string name_;
  double interval_seconds_ = 1.0;
  std::vector<double> throughput_mbps_;
};

/// A copy of `trace` with every sample multiplied by `factor` (> 0). Used
/// to retarget the ABR-scale datasets (~0.05-50 Mbps) to other domains,
/// e.g. x10 for congestion-control bottleneck links.
Trace ScaleTrace(const Trace& trace, double factor);

/// ScaleTrace applied to a whole set.
std::vector<Trace> ScaleTraces(const std::vector<Trace>& traces,
                               double factor);

}  // namespace osap::traces
