// Trace file I/O.
//
// Two formats are supported:
//  - "csv": one `seconds,mbps` row per sample - the library's native
//    round-trippable format.
//  - "mahimahi": the packet-delivery-opportunity format used by the
//    MahiMahi link emulator the paper's testbed runs on [30]: each line is
//    a millisecond timestamp at which one 1500-byte MTU packet can leave
//    the link. Writing quantizes the trace to packet opportunities;
//    reading bins opportunities per second back into Mbps.
#pragma once

#include <filesystem>
#include <vector>

#include "traces/trace.h"

namespace osap::traces {

/// Writes a trace as CSV (`seconds,mbps` rows, header included).
void WriteCsvTrace(const Trace& trace, const std::filesystem::path& path);

/// Reads a CSV trace written by WriteCsvTrace.
Trace ReadCsvTrace(const std::filesystem::path& path);

/// Writes a Mahimahi packet-opportunity file covering one cycle of the
/// trace (1500-byte packets, millisecond timestamps).
void WriteMahimahiTrace(const Trace& trace,
                        const std::filesystem::path& path);

/// Reads a Mahimahi packet-opportunity file, binning into 1-second Mbps
/// samples. Seconds with no packet opportunity are floored at a small
/// positive throughput (traces must stay positive).
Trace ReadMahimahiTrace(const std::filesystem::path& path);

/// Writes every trace of a set into `dir/<index>.csv`; creates `dir`.
void WriteTraceDirectory(const std::vector<Trace>& traces,
                         const std::filesystem::path& dir);

/// Reads all `*.csv` traces in a directory (sorted by filename).
std::vector<Trace> ReadTraceDirectory(const std::filesystem::path& dir);

}  // namespace osap::traces
