#include "traces/trace.h"

#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace osap::traces {

Trace::Trace(std::string name, double interval_seconds,
             std::vector<double> throughput_mbps)
    : name_(std::move(name)),
      interval_seconds_(interval_seconds),
      throughput_mbps_(std::move(throughput_mbps)) {
  OSAP_REQUIRE(interval_seconds_ > 0.0, "Trace: interval must be > 0");
  OSAP_REQUIRE(!throughput_mbps_.empty(), "Trace: needs >= 1 sample");
  for (double v : throughput_mbps_) {
    OSAP_REQUIRE(v > 0.0, "Trace: throughput samples must be > 0 Mbps");
  }
}

double Trace::Duration() const {
  return interval_seconds_ * static_cast<double>(throughput_mbps_.size());
}

double Trace::ThroughputAt(double time_seconds) const {
  OSAP_REQUIRE(time_seconds >= 0.0, "ThroughputAt: time must be >= 0");
  const double wrapped = std::fmod(time_seconds, Duration());
  auto idx = static_cast<std::size_t>(wrapped / interval_seconds_);
  if (idx >= throughput_mbps_.size()) idx = throughput_mbps_.size() - 1;
  return throughput_mbps_[idx];
}

double Trace::MeanThroughput() const {
  return Mean(throughput_mbps_);
}

Trace ScaleTrace(const Trace& trace, double factor) {
  OSAP_REQUIRE(factor > 0.0, "ScaleTrace: factor must be > 0");
  std::vector<double> scaled;
  scaled.reserve(trace.SampleCount());
  for (double v : trace.samples()) scaled.push_back(v * factor);
  return Trace(trace.name(), trace.interval_seconds(), std::move(scaled));
}

std::vector<Trace> ScaleTraces(const std::vector<Trace>& traces,
                               double factor) {
  std::vector<Trace> out;
  out.reserve(traces.size());
  for (const Trace& t : traces) out.push_back(ScaleTrace(t, factor));
  return out;
}

}  // namespace osap::traces
