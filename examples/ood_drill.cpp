// Example: watching the safety net fire during a distribution shift.
//
// The network starts out looking like the training distribution
// (Gamma(2,2)-like throughput) and collapses mid-session to an
// Exponential(0.5) regime. The example logs, per chunk, the three
// uncertainty signals (U_S, U_pi, U_V) side by side and the step at which
// the ND-based SafeAgent abandons Pensieve for Buffer-Based.
#include <cstdio>

#include "core/ensemble_estimators.h"
#include "core/workbench.h"
#include "util/distributions.h"

using namespace osap;
using core::Scheme;
using traces::DatasetId;

namespace {

/// Gamma(2,2) for the first `shift_at` seconds, Exponential(0.5) after.
traces::Trace ShiftingTrace(double duration, double shift_at,
                            std::uint64_t seed) {
  Rng rng(seed);
  GammaDistribution before(2.0, 2.0);
  ExponentialDistribution after(0.5);
  std::vector<double> samples;
  for (double t = 0.0; t < duration; t += 1.0) {
    const double raw =
        t < shift_at ? before.Sample(rng) : after.Sample(rng);
    samples.push_back(std::clamp(raw, 0.05, 50.0));
  }
  return traces::Trace("shifting", 1.0, std::move(samples));
}

}  // namespace

int main() {
  core::WorkbenchConfig cfg = core::FastWorkbenchConfig();
  cfg.a2c.episodes = 300;
  // Train AND evaluate on the full-length 240-chunk video: measured chunk
  // throughput depends on session shape (RTT amortization per chunk), so
  // the detector must be fitted on sessions like the ones it will watch -
  // and the 300 s shift has to land mid-session.
  cfg.train_video_repeats = 5;
  cfg.eval_video_repeats = 5;
  // A longer uncertain streak (l = 5 vs the paper's 3), more training
  // sessions and a stricter outlier budget temper the false-alarm rate of
  // this quickly-fitted OC-SVM.
  cfg.trigger_l = 5;
  cfg.dataset.trace_count = 20;
  cfg.nd_nu = 0.02;
  core::Workbench bench(cfg);
  const DatasetId train = DatasetId::kGamma22;
  std::printf("training on %s...\n", traces::DatasetLabel(train).c_str());
  const core::TrainedBundle& bundle = bench.BundleFor(train);

  // The drill trace: in-distribution for 300 s, then a collapse.
  const traces::Trace trace = ShiftingTrace(960.0, 300.0, 99);

  // The protected agent (ND signal drives defaulting). We use the
  // revocable extension here rather than the paper's permanent mode: an
  // occasional in-distribution false alarm hands control back to Pensieve
  // after a quiet period, while the real collapse keeps the default policy
  // in charge for the rest of the session.
  auto nd_estimator =
      std::make_shared<core::NoveltyDetector>(*bundle.novelty);
  nd_estimator->Reset();
  core::SafeAgentConfig safe_cfg;
  safe_cfg.trigger.mode = core::TriggerMode::kBinary;
  safe_cfg.trigger.l = cfg.trigger_l;
  safe_cfg.mode = core::DefaultingMode::kRevocable;
  safe_cfg.revoke_after = 10;
  auto policy = std::make_shared<core::SafeAgent>(
      bench.MakePolicy(Scheme::kPensieve, train),
      bench.MakePolicy(Scheme::kBufferBased, train), nd_estimator,
      safe_cfg);
  core::SafeAgent* safe = policy.get();
  // ...plus side-channel estimators so we can display all three signals
  // (the display U_S detector is a copy sharing the fitted OC-SVM but
  // owning its own observation window).
  core::NoveltyDetector u_s(*bundle.novelty);
  u_s.Reset();
  core::AgentEnsembleEstimator u_pi(bundle.agents,
                                    cfg.ensemble_discard);
  core::ValueEnsembleEstimator u_v(bundle.value_nets,
                                   cfg.ensemble_discard);

  abr::AbrEnvironment env = bench.MakeEvalEnvironment();
  env.SetFixedTrace(trace);
  policy->Reset();
  mdp::State state = env.Reset();
  bool done = false;
  std::size_t chunk = 0;
  bool was_defaulted = false;
  std::printf("\n%5s %10s %6s %8s %8s  %s\n", "chunk", "thru(Mbps)", "U_S",
              "U_pi", "U_V", "policy in control");
  while (!done) {
    const double us = u_s.Score(state);
    const double upi = u_pi.Score(state);
    const double uv = u_v.Score(state);
    const mdp::Action action = policy->SelectAction(state);
    const mdp::StepResult result = env.Step(action);
    const bool toggled = safe->Defaulted() != was_defaulted;
    if (chunk % 10 == 0 || toggled) {
      std::printf("%5zu %10.2f %6.0f %8.4f %8.4f  %s\n", chunk,
                  env.LastDownload().throughput_mbps, us, upi, uv,
                  safe->Defaulted() ? "buffer_based (defaulted)"
                                    : "pensieve");
    }
    if (toggled) {
      std::printf("      >>> control %s at chunk %zu (~%.0f s; the shift "
                  "is at 300 s)\n",
                  safe->Defaulted() ? "handed to buffer_based"
                                    : "returned to pensieve",
                  chunk, static_cast<double>(chunk) * 4.0);
      was_defaulted = safe->Defaulted();
    }
    state = result.next_state;
    done = result.done;
    ++chunk;
  }
  std::printf("\nsession QoE with the safety net: %.1f "
              "(defaulted %.0f%% of decisions)\n",
              env.Qoe().Total(), 100.0 * safe->DefaultedFraction());

  // The same trace without protection.
  auto vanilla = bench.MakePolicy(Scheme::kPensieve, train);
  env.SetFixedTrace(trace);
  vanilla->Reset();
  state = env.Reset();
  done = false;
  while (!done) {
    mdp::StepResult r = env.Step(vanilla->SelectAction(state));
    state = std::move(r.next_state);
    done = r.done;
  }
  std::printf("session QoE without it:          %.1f\n", env.Qoe().Total());
  return 0;
}
