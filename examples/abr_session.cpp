// Example: anatomy of one ABR streaming session.
//
// Streams the 240-chunk video over a Norway-3G-like trace with the
// Buffer-Based policy and logs every chunk: selected bitrate, download
// time, rebuffering, buffer level and the per-chunk QoE contribution -
// the raw quantities behind every number in the paper's figures. Also
// demonstrates the MPC and rate-based baselines on the same trace.
#include <cstdio>

#include "abr/abr_environment.h"
#include "core/session.h"
#include "mdp/rollout.h"
#include "policies/buffer_based.h"
#include "policies/mpc.h"
#include "policies/rate_based.h"
#include "traces/generators.h"

using namespace osap;

int main() {
  // One commute-like trace from the Norway 3G stand-in generator.
  const auto generator = traces::MakeNorway3gGenerator();
  Rng rng(42);
  const traces::Trace trace = generator->Generate(rng, 960.0, 0);
  std::printf("trace: %s, %.0f s, mean throughput %.2f Mbps\n\n",
              trace.name().c_str(), trace.Duration(),
              trace.MeanThroughput());

  abr::AbrEnvironment env(abr::MakeEnvivioLikeVideo(5), {});
  env.SetFixedTrace(trace);
  policies::BufferBasedPolicy bb(env.video(), env.layout());

  // StreamSession records every chunk; the same trace is exported as CSV
  // for external plotting.
  const core::SessionTrace session = core::StreamSession(env, bb, trace);
  std::printf("%5s %8s %9s %9s %8s %9s\n", "chunk", "kbps", "download",
              "rebuffer", "buffer", "reward");
  for (const core::ChunkRecord& c : session.chunks) {
    if (c.chunk < 10 || c.chunk % 20 == 0) {
      std::printf("%5zu %8.0f %8.2fs %8.2fs %7.1fs %9.2f\n", c.chunk,
                  c.bitrate_kbps, c.download_seconds, c.rebuffer_seconds,
                  c.buffer_seconds, c.reward);
    }
  }
  const abr::QoeAccumulator& qoe = env.Qoe();
  std::printf("\nsession summary (buffer_based):\n");
  std::printf("  chunks:             %zu\n", session.chunks.size());
  std::printf("  bitrate utility:    %8.2f\n", qoe.BitrateUtility());
  std::printf("  rebuffer penalty:   %8.2f\n", -qoe.RebufferPenalty());
  std::printf("  smoothness penalty: %8.2f\n", -qoe.SmoothnessPenalty());
  std::printf("  switches:           %zu\n", session.SwitchCount());
  std::printf("  total QoE:          %8.2f\n", session.TotalQoe());
  core::WriteSessionCsv(session, "results/abr_session.csv");
  std::printf("  per-chunk CSV:      results/abr_session.csv\n");

  // The other heuristics on the same trace.
  std::printf("\nbaselines on the same trace:\n");
  policies::MpcPolicy mpc(env.video(), env.layout());
  policies::RateBasedPolicy rate(env.video(), env.layout());
  for (mdp::Policy* policy :
       std::initializer_list<mdp::Policy*>{&bb, &mpc, &rate}) {
    const mdp::Trajectory t = mdp::Rollout(env, *policy);
    std::printf("  %-12s QoE %8.2f\n", policy->Name().c_str(),
                t.TotalReward());
  }
  return 0;
}
