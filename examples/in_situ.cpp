// Example: in-situ adaptation (paper Section 5 future work, following
// Yan et al., "Learning in situ", NSDI '20 - reference [61]).
//
// A Pensieve agent trained on Gamma(2,2) is deployed into a Norway-3G-like
// environment, where it collapses. Instead of (or in addition to)
// defaulting, the operator can keep training the agent on traces collected
// from the operational environment. This example measures the deployed
// agent before and after fine-tuning on operational traces, with the
// safety net covering the interim:
//
//   phase 0: train offline on Gamma(2,2)          -> good in-dist, bad OOD
//   phase 1: deploy on Norway with the ND net     -> safe but BB-level
//   phase 2: fine-tune on collected Norway traces -> learned policy
//                                                    becomes trustworthy
#include <cstdio>

#include "core/evaluation.h"
#include "core/novelty_detector.h"
#include "core/safe_agent.h"
#include "policies/buffer_based.h"
#include "policies/pensieve_net.h"
#include "policies/pensieve_policy.h"
#include "rl/a2c.h"
#include "traces/dataset.h"

using namespace osap;

int main() {
  const traces::Dataset lab = traces::BuildDataset(traces::DatasetId::kGamma22);
  const traces::Dataset field =
      traces::BuildDataset(traces::DatasetId::kNorway3g);

  abr::AbrEnvironmentConfig env_cfg;
  const abr::VideoSpec video = abr::MakeEnvivioLikeVideo(5);

  // Phase 0: offline training in the "lab" distribution.
  std::printf("phase 0: offline training on %s...\n",
              traces::DatasetLabel(traces::DatasetId::kGamma22).c_str());
  abr::AbrEnvironment lab_env(video, env_cfg);
  lab_env.SetTracePool(lab.train, 7);
  Rng init_rng(3);
  auto net = std::make_shared<nn::ActorCriticNet>(
      policies::MakePensieveActorCritic(env_cfg.layout, {}, init_rng));
  rl::A2cConfig offline_cfg;
  offline_cfg.episodes = 1200;
  rl::TrainA2c(*net, lab_env, offline_cfg);

  auto pensieve = std::make_shared<policies::PensievePolicy>(
      net, policies::ActionSelection::kGreedy, 0);
  auto bb = std::make_shared<policies::BufferBasedPolicy>(video,
                                                          env_cfg.layout);
  abr::AbrEnvironment eval_env(video, env_cfg);
  auto qoe_on_field = [&](mdp::Policy& policy) {
    return core::EvaluatePolicy(policy, eval_env, field.test).MeanQoe();
  };
  std::printf("  deployed agent on the field (Norway) test set: %8.1f\n",
              qoe_on_field(*pensieve));
  std::printf("  buffer_based on the same sessions:             %8.1f\n",
              qoe_on_field(*bb));

  // Phase 1: the safety net keeps the deployment safe meanwhile.
  core::NoveltyDetectorConfig nd_cfg;  // Gamma(2,2) is synthetic: k = 30
  nd_cfg.k = 30;
  auto detector =
      std::make_shared<core::NoveltyDetector>(nd_cfg, env_cfg.layout);
  {
    std::vector<std::vector<double>> features;
    for (const traces::Trace& trace : lab.train) {
      eval_env.SetFixedTrace(trace);
      pensieve->Reset();
      std::vector<double> throughputs;
      mdp::State s = eval_env.Reset();
      bool done = false;
      while (!done) {
        mdp::StepResult r = eval_env.Step(pensieve->SelectAction(s));
        throughputs.push_back(eval_env.LastDownload().throughput_mbps);
        s = std::move(r.next_state);
        done = r.done;
      }
      for (auto& f :
           core::NoveltyDetector::ExtractFeatures(throughputs, nd_cfg)) {
        features.push_back(std::move(f));
      }
    }
    detector->Fit(features);
  }
  core::SafeAgentConfig safe_cfg;
  safe_cfg.trigger.mode = core::TriggerMode::kBinary;
  safe_cfg.trigger.l = 3;
  core::SafeAgent safe(pensieve, bb, detector, safe_cfg);
  std::printf("phase 1: ND safety net over the deployment:      %8.1f\n",
              qoe_on_field(safe));

  // Phase 2: fine-tune in situ on operational (field) traces. Uses the
  // field TRAINING split - in production these are traces collected by
  // the deployed clients.
  std::printf("phase 2: fine-tuning on %zu operational traces...\n",
              field.train.size());
  abr::AbrEnvironment field_env(video, env_cfg);
  field_env.SetTracePool(field.train, 11);
  rl::A2cConfig tune_cfg;
  tune_cfg.episodes = 800;
  tune_cfg.entropy_coef_start = 0.3;  // warm start: less exploration
  tune_cfg.seed = 21;
  rl::TrainA2c(*net, field_env, tune_cfg);
  std::printf("  fine-tuned agent on the field test set:        %8.1f\n",
              qoe_on_field(*pensieve));

  std::printf(
      "\nThe safety net carries the deployment through the distribution\n"
      "shift; in-situ training then restores (and surpasses) heuristic\n"
      "performance, after which the net should rarely fire.\n");
  return 0;
}
