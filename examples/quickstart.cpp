// Quickstart: wrap a learned policy with an online safety net.
//
// This is the library's core API in ~60 effective lines:
//   1. build datasets and train a (small) Pensieve agent;
//   2. fit a U_S novelty detector on the agent's training sessions;
//   3. compose learned policy + default policy + detector into a SafeAgent;
//   4. stream in-distribution and out-of-distribution test traces and
//      compare against the unprotected agent.
#include <cstdio>

#include "core/workbench.h"

using namespace osap;
using core::Scheme;
using traces::DatasetId;

int main() {
  // The Workbench packages the paper's whole pipeline; FastWorkbenchConfig
  // keeps this example's training under a minute. Swap in
  // core::WorkbenchConfig{} for the full paper-scale setup.
  core::WorkbenchConfig cfg = core::FastWorkbenchConfig();
  cfg.a2c.episodes = 300;
  core::Workbench bench(cfg);

  const DatasetId train = DatasetId::kGamma22;       // training distribution
  const DatasetId shifted = DatasetId::kExponential; // deployment surprise

  std::printf("training Pensieve + safety artifacts on %s...\n",
              traces::DatasetLabel(train).c_str());
  bench.BundleFor(train);  // trains agents, value nets, OC-SVM; calibrates

  // Policies: the unprotected agent and the ND-protected SafeAgent.
  // MakePolicy wires SafeAgent(learned=Pensieve, default=BufferBased,
  // estimator=NoveltyDetector, trigger=l-consecutive-OOD) for us.
  std::printf("\n%-34s %12s %12s\n", "scenario", "pensieve", "pensieve+ND");
  for (const DatasetId test : {train, shifted}) {
    const double unprotected =
        bench.Evaluate(Scheme::kPensieve, train, test).MeanQoe();
    const double protected_qoe =
        bench.Evaluate(Scheme::kNoveltyDetection, train, test).MeanQoe();
    std::printf("%-34s %12.1f %12.1f\n",
                (std::string(test == train ? "in-distribution: " : "OOD: ") +
                 traces::DatasetLabel(test))
                    .c_str(),
                unprotected, protected_qoe);
  }

  std::printf(
      "\nReading the table: in-distribution the safety net costs a little\n"
      "performance (it occasionally defaults to Buffer-Based); under\n"
      "distribution shift it prevents the learned policy's collapse by\n"
      "switching to the battle-tested default.\n");
  return 0;
}
