// Example: online safety assurance for a congestion-control agent
// (the paper's methodology in its second domain; see
// bench/ext_congestion_control.cpp for the full evaluation).
//
// Trains a small Aurora-style rate controller on Gamma(2,2) x10 links,
// fits a U_S novelty detector on its delivered-rate statistics, then
// streams a connection whose capacity collapses mid-flight and narrates
// the sending rate, the uncertainty signal, and the handover to AIMD.
#include <algorithm>
#include <cstdio>

#include "cc/aimd_policy.h"
#include "cc/cc_net.h"
#include "core/novelty_detector.h"
#include "core/safe_agent.h"
#include "mdp/rollout.h"
#include "rl/a2c.h"
#include "traces/dataset.h"
#include "util/distributions.h"

using namespace osap;

namespace {

class GreedyRlPolicy final : public mdp::Policy {
 public:
  explicit GreedyRlPolicy(std::shared_ptr<nn::ActorCriticNet> net)
      : net_(std::move(net)) {}
  mdp::Action SelectAction(const mdp::State& s) override {
    const auto p = net_->ActionProbs(s);
    return static_cast<mdp::Action>(
        std::distance(p.begin(), std::max_element(p.begin(), p.end())));
  }
  std::string Name() const override { return "aurora"; }

 private:
  std::shared_ptr<nn::ActorCriticNet> net_;
};

/// Capacity ~ Gamma(2,2)x10 for the first `shift_at` seconds, then an
/// Exponential(0.5)x10 collapse.
traces::Trace ShiftingLink(double duration, double shift_at,
                           std::uint64_t seed) {
  Rng rng(seed);
  GammaDistribution before(2.0, 2.0);
  ExponentialDistribution after(0.5);
  std::vector<double> samples;
  for (double t = 0.0; t < duration; t += 1.0) {
    const double raw =
        (t < shift_at ? before.Sample(rng) : after.Sample(rng)) * 10.0;
    samples.push_back(std::clamp(raw, 0.5, 500.0));
  }
  return traces::Trace("shifting-link", 1.0, std::move(samples));
}

}  // namespace

int main() {
  cc::CcEnvironmentConfig cfg;
  cfg.initial_rate_mbps = 5.0;
  cfg.max_rate_mbps = 100.0;

  const auto train_traces = traces::ScaleTraces(
      traces::BuildDataset(traces::DatasetId::kGamma22).train, 10.0);

  std::printf("training an Aurora-style controller on Gamma(2,2) x10 "
              "links...\n");
  cc::CcEnvironment train_env(cfg);
  train_env.SetTracePool(train_traces, 11);
  Rng init_rng(1);
  auto net = std::make_shared<nn::ActorCriticNet>(cc::MakeCcActorCritic(
      cfg.layout, cfg.rate_multipliers.size(), {}, init_rng));
  rl::A2cConfig a2c;
  a2c.episodes = 3500;
  rl::TrainA2c(*net, train_env, a2c);

  auto rl_policy = std::make_shared<GreedyRlPolicy>(net);
  auto aimd =
      std::make_shared<cc::AimdPolicy>(cfg.layout, cfg.rate_multipliers);

  // U_S over the controller's delivered-rate windows.
  core::NoveltyDetectorConfig nd_cfg;
  nd_cfg.k = 30;
  const cc::CcStateLayout layout = cfg.layout;
  auto detector = std::make_shared<core::NoveltyDetector>(
      nd_cfg, [layout](const mdp::State& s) {
        return layout.LatestDeliveredMbps(s);
      });
  {
    cc::CcEnvironment env(cfg);
    std::vector<std::vector<double>> features;
    for (const traces::Trace& trace : train_traces) {
      env.SetFixedTrace(trace);
      std::vector<double> delivered;
      mdp::State s = env.Reset();
      bool done = false;
      while (!done) {
        mdp::StepResult r = env.Step(rl_policy->SelectAction(s));
        delivered.push_back(env.LastReport().delivered_mbps);
        s = std::move(r.next_state);
        done = r.done;
      }
      for (auto& f :
           core::NoveltyDetector::ExtractFeatures(delivered, nd_cfg)) {
        features.push_back(std::move(f));
      }
    }
    detector->Fit(features);
  }

  core::SafeAgentConfig sa;
  sa.trigger.mode = core::TriggerMode::kBinary;
  sa.trigger.l = 3;
  core::SafeAgent safe(rl_policy, aimd, detector, sa);

  // The drill: capacity collapses at t = 20 s (MI 200 of 400).
  const traces::Trace link = ShiftingLink(60.0, 20.0, 9);
  cc::CcEnvironment env(cfg);
  env.SetFixedTrace(link);
  safe.Reset();
  mdp::State s = env.Reset();
  bool done = false;
  std::size_t mi = 0;
  bool announced = false;
  std::printf("\n%6s %10s %10s %10s  %s\n", "MI", "capacity", "rate",
              "delivered", "controller");
  while (!done) {
    const mdp::StepResult r = env.Step(safe.SelectAction(s));
    if (mi % 25 == 0 || (safe.Defaulted() && !announced)) {
      std::printf("%6zu %9.1fM %9.1fM %9.1fM  %s\n", mi,
                  env.LastReport().capacity_mbps, env.CurrentRateMbps(),
                  env.LastReport().delivered_mbps,
                  safe.Defaulted() ? "aimd (defaulted)" : "aurora");
    }
    if (safe.Defaulted() && !announced) {
      announced = true;
      std::printf("       >>> safety net fired at MI %zu (collapse began "
                  "at MI 200)\n",
                  safe.DefaultStep());
    }
    s = r.next_state;
    done = r.done;
    ++mi;
  }
  std::printf("\nepisode reward with the safety net: %10.0f\n",
              [&] {
                cc::CcEnvironment e(cfg);
                e.SetFixedTrace(link);
                safe.Reset();
                return mdp::Rollout(e, safe).TotalReward();
              }());
  std::printf("episode reward without it:          %10.0f\n",
              [&] {
                cc::CcEnvironment e(cfg);
                e.SetFixedTrace(link);
                return mdp::Rollout(e, *rl_policy).TotalReward();
              }());
  std::printf("AIMD on the same link:              %10.0f\n",
              [&] {
                cc::CcEnvironment e(cfg);
                e.SetFixedTrace(link);
                return mdp::Rollout(e, *aimd).TotalReward();
              }());
  return 0;
}
