// Example: train a Pensieve agent from scratch on one distribution and
// watch the learning curve, then compare the trained agent against the
// Buffer-Based and Random baselines in-distribution and out-of-distribution.
//
// Usage: train_pensieve [episodes] [train_dataset]
//   train_dataset: norway | belgium | gamma_1_2 | gamma_2_2 | logistic |
//                  exponential (default gamma_2_2)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/evaluation.h"
#include "policies/buffer_based.h"
#include "policies/pensieve_net.h"
#include "policies/pensieve_policy.h"
#include "policies/random_policy.h"
#include "rl/a2c.h"
#include "traces/dataset.h"
#include "util/table.h"

using namespace osap;

namespace {

traces::DatasetId ParseDataset(const std::string& name) {
  for (traces::DatasetId id : traces::AllDatasetIds()) {
    if (traces::DatasetName(id) == name) return id;
  }
  std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t episodes =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 300;
  const traces::DatasetId train_id =
      argc > 2 ? ParseDataset(argv[2]) : traces::DatasetId::kGamma22;

  std::printf("== building datasets ==\n");
  const traces::Dataset train_ds = traces::BuildDataset(train_id);

  // Training environment: full-length video over the training traces.
  abr::AbrEnvironmentConfig env_cfg;
  abr::AbrEnvironment train_env(abr::MakeEnvivioLikeVideo(5), env_cfg);
  train_env.SetTracePool(train_ds.train, /*seed=*/11);

  std::printf("== training A2C agent on %s (%zu episodes) ==\n",
              traces::DatasetLabel(train_id).c_str(), episodes);
  Rng init_rng(1);
  auto net = std::make_shared<nn::ActorCriticNet>(
      policies::MakePensieveActorCritic(env_cfg.layout, {}, init_rng));
  rl::A2cConfig a2c;
  a2c.episodes = episodes;
  const rl::TrainingHistory history = rl::TrainA2c(*net, train_env, a2c);
  for (std::size_t e = 0; e < history.episode_rewards.size();
       e += std::max<std::size_t>(1, episodes / 15)) {
    std::printf("  episode %4zu  reward %8.2f\n", e,
                history.episode_rewards[e]);
  }
  std::printf("  final (mean of last 20): %.2f\n",
              history.RecentMeanReward(20));

  // Evaluate against baselines on every dataset's held-out test traces,
  // streaming the full 240-chunk video.
  std::printf("\n== evaluation (240-chunk video, test traces) ==\n");
  TablePrinter table(
      {"test dataset", "pensieve", "buffer_based", "random", "verdict"});
  for (traces::DatasetId test_id : traces::AllDatasetIds()) {
    const traces::Dataset test_ds =
        test_id == train_id ? train_ds : traces::BuildDataset(test_id);
    abr::AbrEnvironment eval_env(abr::MakeEnvivioLikeVideo(5), env_cfg);

    policies::PensievePolicy pensieve(net,
                                      policies::ActionSelection::kGreedy, 0);
    policies::BufferBasedPolicy bb(eval_env.video(), env_cfg.layout);
    policies::RandomPolicy random(eval_env.video().LevelCount(), 99);

    const double p =
        core::EvaluatePolicy(pensieve, eval_env, test_ds.test).MeanQoe();
    const double b =
        core::EvaluatePolicy(bb, eval_env, test_ds.test).MeanQoe();
    const double r =
        core::EvaluatePolicy(random, eval_env, test_ds.test).MeanQoe();
    const char* verdict = p >= b ? "pensieve wins" : "BB wins";
    table.AddRow({traces::DatasetLabel(test_id) +
                      (test_id == train_id ? " (in-dist)" : ""),
                  TablePrinter::Num(p), TablePrinter::Num(b),
                  TablePrinter::Num(r), verdict});
  }
  table.Print();
  return 0;
}
