// Figure 5: A CDF of performance for the different schemes across all 30
// training-test combinations where test is OOD.
//
// One normalized score per OOD (train, test) pair per scheme; the bench
// prints the empirical CDF at decile resolution and writes every point to
// CSV. Expected shape: the safety schemes' CDFs sit to the right of
// vanilla Pensieve's in the lower tail (fewer catastrophic sessions).
#include <map>

#include "bench_common.h"

using namespace osap;
using core::Scheme;

int main() {
  bench::PrintHeader("Figure 5", "CDF of normalized OOD performance");
  core::Workbench bench(bench::PaperConfig());
  CsvWriter csv(bench::ResultsDir() / "fig5_ood_cdf.csv");
  csv.WriteHeader({"scheme", "normalized_score", "cumulative_probability"});

  const std::vector<Scheme> schemes = {
      Scheme::kNoveltyDetection, Scheme::kAgentEnsemble,
      Scheme::kValueEnsemble, Scheme::kPensieve};

  std::map<Scheme, std::vector<double>> scores;
  for (Scheme scheme : schemes) {
    for (traces::DatasetId train : traces::AllDatasetIds()) {
      for (traces::DatasetId test : traces::AllDatasetIds()) {
        if (train == test) continue;
        scores[scheme].push_back(bench.NormalizedMean(scheme, train, test));
      }
    }
    for (const auto& [value, prob] : EmpiricalCdf(scores[scheme])) {
      csv.WriteRow({core::SchemeName(scheme), std::to_string(value),
                    std::to_string(prob)});
    }
  }

  // Decile table: score at each cumulative probability.
  TablePrinter table({"cum. prob.", "nd", "a_ensemble", "v_ensemble",
                      "pensieve"});
  for (int decile = 1; decile <= 10; ++decile) {
    const double q = decile / 10.0;
    std::vector<std::string> row = {TablePrinter::Num(q, 1)};
    for (Scheme scheme : schemes) {
      row.push_back(
          TablePrinter::Num(Quantile(scores[scheme], q), 2));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\nNormalized score at each decile of the 30 OOD pairs "
              "(0 = Random, 1 = BB):\n\n");
  table.Print();

  std::printf("\nShape checks (paper Section 3.4):\n");
  for (Scheme s : core::SafetySchemes()) {
    const double p10_safe = Quantile(scores[s], 0.1);
    const double p10_vanilla = Quantile(scores[Scheme::kPensieve], 0.1);
    std::printf("  %-11s 10th percentile above vanilla's: %s "
                "(%.2f vs %.2f)\n",
                core::SchemeName(s).c_str(),
                p10_safe > p10_vanilla ? "yes" : "NO", p10_safe,
                p10_vanilla);
  }
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "fig5_ood_cdf.csv").c_str());
  return 0;
}
