// Ablation: ensemble size and trimming (paper Sections 2.4 and 3.1).
//
// The paper trains i = 5 members and discards the 2 outputs farthest from
// the average before computing U_V. We sweep (size, discard) combinations
// for the V-ensemble trained on Gamma(2,2). Each variant's alpha is
// recalibrated to the same ND in-distribution target so the comparison
// stays fair (Section 2.5). Expected shape: trimming robustifies the
// signal; very small ensembles are noisier estimators.
#include <algorithm>
#include <limits>

#include "bench_common.h"
#include "core/ensemble_estimators.h"

using namespace osap;
using core::Scheme;

namespace {

constexpr auto kTrain = traces::DatasetId::kGamma22;

double NormalizedOnTest(core::Workbench& bench, mdp::Policy& policy,
                        traces::DatasetId test) {
  auto env = bench.MakeEvalEnvironment();
  const double qoe =
      core::EvaluatePolicy(policy, env, bench.DatasetFor(test).test)
          .MeanQoe();
  const double random = bench.Evaluate(Scheme::kRandom, test, test).MeanQoe();
  const double bb =
      bench.Evaluate(Scheme::kBufferBased, test, test).MeanQoe();
  return core::NormalizedScore(qoe, random, bb);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: ensembles",
                     "V-ensemble size and trimming");
  core::Workbench bench(bench::PaperConfig());
  const core::TrainedBundle& bundle = bench.BundleFor(kTrain);
  auto eval_env = bench.MakeEvalEnvironment();
  const auto& validation = bench.DatasetFor(kTrain).validation;

  CsvWriter csv(bench::ResultsDir() / "ablation_ensemble.csv");
  csv.WriteHeader({"size", "discard", "alpha", "in_dist_qoe",
                   "ood_min_norm", "ood_mean_norm"});
  TablePrinter table({"size", "discard", "alpha", "in-dist QoE",
                      "OOD min (norm)", "OOD mean (norm)"});

  struct Variant {
    std::size_t size;
    std::size_t discard;
  };
  const std::vector<Variant> variants = {
      {3, 0}, {3, 1}, {5, 0}, {5, 2}};

  for (const Variant& v : variants) {
    std::vector<std::shared_ptr<nn::CompositeNet>> members(
        bundle.value_nets.begin(),
        bundle.value_nets.begin() + static_cast<long>(v.size));
    auto make_agent = [&](double alpha) {
      auto estimator = std::make_shared<core::ValueEnsembleEstimator>(
          members, v.discard);
      core::SafeAgentConfig cfg;
      cfg.trigger.mode = core::TriggerMode::kWindowVariance;
      cfg.trigger.k = bench.config().trigger_k;
      cfg.trigger.l = bench.config().trigger_l;
      cfg.trigger.alpha = alpha;
      return std::make_unique<core::SafeAgent>(
          bench.MakePolicy(Scheme::kPensieve, kTrain),
          bench.MakePolicy(Scheme::kBufferBased, kTrain), estimator, cfg);
    };

    // Recalibrate alpha against the ND in-distribution target.
    auto estimator_for_range = std::make_shared<core::ValueEnsembleEstimator>(
        members, v.discard);
    auto driver = bench.MakePolicy(Scheme::kPensieve, kTrain);
    const double hi = core::MaxWindowVariance(
        *estimator_for_range, *driver, eval_env, validation,
        bench.config().trigger_k);
    double alpha = 0.0;
    if (hi > 0.0) {
      const auto result = core::CalibrateAlpha(
          [&](double a) {
            auto agent = make_agent(a);
            return core::EvaluatePolicy(*agent, eval_env, validation)
                .MeanQoe();
          },
          bundle.nd_in_dist_qoe, 0.0, hi * 1.25,
          bench.config().calibration);
      alpha = result.alpha;
    }

    auto agent = make_agent(alpha);
    const double in_dist =
        core::EvaluatePolicy(*agent, eval_env, validation).MeanQoe();
    double ood_min = std::numeric_limits<double>::infinity();
    double ood_sum = 0.0;
    std::size_t n = 0;
    for (traces::DatasetId test : traces::AllDatasetIds()) {
      if (test == kTrain) continue;
      const double score = NormalizedOnTest(bench, *agent, test);
      ood_min = std::min(ood_min, score);
      ood_sum += score;
      ++n;
    }
    table.AddRow({std::to_string(v.size), std::to_string(v.discard),
                  TablePrinter::Num(alpha, 4),
                  TablePrinter::Num(in_dist, 1),
                  TablePrinter::Num(ood_min, 2),
                  TablePrinter::Num(ood_sum / static_cast<double>(n), 2)});
    csv.WriteNumericRow({static_cast<double>(v.size),
                         static_cast<double>(v.discard), alpha, in_dist,
                         ood_min, ood_sum / static_cast<double>(n)});
  }

  std::printf("\nV-ensemble variants trained on %s (alpha recalibrated "
              "per variant; paper uses size 5, discard 2):\n\n",
              traces::DatasetLabel(kTrain).c_str());
  table.Print();
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "ablation_ensemble.csv").c_str());
  return 0;
}
