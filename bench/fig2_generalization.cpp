// Figure 2: Illustration of Pensieve's (problematic) generalization to
// other environments.
//
//  (a) Pensieve trained on Belgium, evaluated on all six datasets;
//  (b) Pensieve trained on Gamma(2,2), evaluated on all six datasets;
// each against the BB and Random baselines (raw QoE). Expected shape
// (paper Section 3.3): with at most one exception per training
// distribution, Pensieve is outperformed by BB out-of-distribution and is
// sometimes below even Random.
#include "bench_common.h"

using namespace osap;
using core::Scheme;

namespace {

void RunPanel(core::Workbench& bench, traces::DatasetId train,
              const char* panel, CsvWriter& csv) {
  std::printf("\n(%s) Pensieve trained on %s:\n\n", panel,
              traces::DatasetLabel(train).c_str());
  TablePrinter table(
      {"test dataset", "pensieve", "buffer_based", "random", "winner"});
  std::size_t bb_wins = 0;
  std::size_t below_random = 0;
  for (traces::DatasetId test : traces::AllDatasetIds()) {
    const double p = bench.Evaluate(Scheme::kPensieve, train, test).MeanQoe();
    const double b =
        bench.Evaluate(Scheme::kBufferBased, test, test).MeanQoe();
    const double r = bench.Evaluate(Scheme::kRandom, test, test).MeanQoe();
    if (test != train && b > p) ++bb_wins;
    if (test != train && r > p) ++below_random;
    table.AddRow({traces::DatasetLabel(test) +
                      (test == train ? " (in-dist)" : ""),
                  TablePrinter::Num(p, 1), TablePrinter::Num(b, 1),
                  TablePrinter::Num(r, 1),
                  p >= b ? "pensieve" : "buffer_based"});
    csv.WriteRow({traces::DatasetName(train), traces::DatasetName(test),
                  std::to_string(p), std::to_string(b), std::to_string(r)});
  }
  table.Print();
  std::printf("  OOD datasets where BB beats Pensieve:      %zu/5\n",
              bb_wins);
  std::printf("  OOD datasets where even Random beats it:   %zu/5\n",
              below_random);
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 2",
                     "Pensieve vs BB and Random when out-of-distribution");
  core::Workbench bench(bench::PaperConfig());
  CsvWriter csv(bench::ResultsDir() / "fig2_generalization.csv");
  csv.WriteHeader({"train", "test", "pensieve_qoe", "bb_qoe", "random_qoe"});
  RunPanel(bench, traces::DatasetId::kBelgium4g, "a", csv);
  RunPanel(bench, traces::DatasetId::kGamma22, "b", csv);
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "fig2_generalization.csv").c_str());
  return 0;
}
