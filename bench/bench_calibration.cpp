// Calibration-cost micro-benchmarks (DESIGN.md §11).
//
// Three claims ride here, against a shared CalibrationReplay recording of
// the paper-scale validation set (the same recordings the Workbench
// calibration path consumes):
//
//   1. BM_CalibrateBisection vs BM_CalibrateConformalBatch: selecting a
//      threshold by conformal order statistics (one nonconformity scan +
//      sort + at most 2*radius+1 QoE probes) is >= 5x cheaper wall-clock
//      than the replay bisection (max_iterations QoE probes, each a
//      trigger scan plus fallback-suffix replays), while landing an alpha
//      whose in-distribution QoE matches the bisection's target within
//      CalibrationConfig::tolerance. The QoE-match is CHECKED at setup,
//      not just reported: the binary aborts if conformal drifts off
//      target.
//   2. BM_StreamingObserve: the online arm's per-decision cost is O(1)
//      and nanosecond-scale - one windowed P² update plus a coverage
//      compare (the `/16` point folds in the RefreshAlpha every 16
//      observations that the serving cadence implies).
//   3. BM_ServeCalibration{Off,On}: one DecisionService decision round
//      over 1000 sessions with the streaming arm off vs on; the delta is
//      the tentpole's <= 5% per-decision overhead budget (compare real
//      runs of the two rows with tools/bench_diff.py).
//
// Uses the shared ./osap_cache artifacts (trains them on first run).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/calibration.h"
#include "core/conformal.h"
#include "core/ensemble_estimators.h"
#include "core/novelty_detector.h"
#include "core/replay_calibration.h"
#include "policies/buffer_based.h"
#include "policies/pensieve_policy.h"
#include "serve/decision_service.h"
#include "serve/serving_model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace osap;

namespace {

constexpr auto kTrain = traces::DatasetId::kGamma22;

core::Workbench& SharedBench() {
  static auto* bench = new core::Workbench(bench::PaperConfig());
  return *bench;
}

util::ThreadPool& SharedPool() {
  static auto* pool = new util::ThreadPool(
      std::max<std::size_t>(1, std::thread::hardware_concurrency() - 1));
  return *pool;
}

/// The recording both calibration arms consume: every validation trace's
/// no-default greedy rollout, scored once with the agent ensemble (the
/// U_pi scheme the paper calibrates first).
core::CalibrationReplay<abr::AbrEnvironment>& SharedReplay() {
  static auto* replay = [] {
    core::Workbench& bench = SharedBench();
    const auto& bundle = bench.BundleFor(kTrain);
    const auto& validation = bench.DatasetFor(kTrain).validation;
    abr::AbrEnvironment env = bench.MakeEvalEnvironment();
    auto* r = new core::CalibrationReplay<abr::AbrEnvironment>(
        [&]() -> std::shared_ptr<mdp::Policy> {
          return std::make_shared<policies::PensievePolicy>(
              bundle.agents.front(), policies::ActionSelection::kGreedy, 0);
        },
        [&]() -> std::shared_ptr<mdp::Policy> {
          return std::make_shared<policies::BufferBasedPolicy>(
              bench.eval_video(), bench.layout());
        },
        env, validation, bench.config().trigger_k, bench.config().trigger_l,
        SharedPool());
    r->ScoreWith([&]() -> std::shared_ptr<core::UncertaintyEstimator> {
      return std::make_shared<core::AgentEnsembleEstimator>(
          bundle.agents, bench.config().ensemble_discard);
    });
    return r;
  }();
  return *replay;
}

struct CalibrationTarget {
  double nd_qoe;
  double hi;
};

const CalibrationTarget& SharedTarget() {
  static const CalibrationTarget* target = [] {
    auto& replay = SharedReplay();
    auto* t = new CalibrationTarget();
    t->hi = replay.MaxFullWindowVariance();
    // The ND target needs the novelty scores; re-score with the agent
    // ensemble afterwards so the timed arms see the series they consume.
    core::Workbench& bench = SharedBench();
    const auto& bundle = bench.BundleFor(kTrain);
    replay.ScoreWith([&]() -> std::shared_ptr<core::UncertaintyEstimator> {
      auto detector = std::make_shared<core::NoveltyDetector>(*bundle.novelty);
      detector->Reset();
      return detector;
    });
    t->nd_qoe = replay.MeanQoeAtBinaryTrigger();
    replay.ScoreWith([&]() -> std::shared_ptr<core::UncertaintyEstimator> {
      return std::make_shared<core::AgentEnsembleEstimator>(
          bundle.agents, bench.config().ensemble_discard);
    });
    return t;
  }();
  return *target;
}

double QoeAt(double alpha) { return SharedReplay().MeanQoeAt(alpha); }

/// The ConformalConfig the Workbench conformal branch derives: epsilon
/// from the ND trigger rate (clamped to the achievable rank range), the
/// bisection's early-stop tolerance.
core::ConformalConfig ProductionConformal() {
  core::ConformalConfig conformal;
  conformal.miscoverage = core::BinaryTriggerRate(
      SharedReplay().Sessions(), SharedBench().config().trigger_l);
  const auto n1 = static_cast<double>(SharedReplay().Sessions().size() + 1);
  conformal.miscoverage =
      std::clamp(conformal.miscoverage, 1.0 / n1, 1.0 - 1.0 / n1);
  conformal.tolerance = SharedBench().config().calibration.tolerance;
  return conformal;
}

/// Setup-time contract check: the conformal-batch alpha's in-distribution
/// QoE must match the bisection's target within the bisection's own
/// tolerance (relative to max(|target|, 1), same stop rule).
void CheckConformalMatchesTarget() {
  static const bool checked = [] {
    const CalibrationTarget& target = SharedTarget();
    const core::CalibrationConfig bisect_cfg =
        SharedBench().config().calibration;
    const core::ConformalConfig conformal = ProductionConformal();
    const core::ConformalResult result = core::ConformalAlphaMatchingQoe(
        core::SessionNonconformities(SharedReplay().Sessions(),
                                     SharedBench().config().trigger_k,
                                     SharedBench().config().trigger_l),
        conformal, QoeAt, target.nd_qoe);
    const double gap = std::abs(result.achieved_qoe - target.nd_qoe);
    const double budget =
        bisect_cfg.tolerance * std::max(std::abs(target.nd_qoe), 1.0);
    OSAP_CHECK_MSG(gap <= budget,
                   "conformal-batch alpha misses the bisection QoE target");
    std::printf("conformal-batch: alpha %.6g rank %zu/%zu  QoE %.4f "
                "(target %.4f, budget %.4f)\n",
                result.alpha, result.rank, result.sessions,
                result.achieved_qoe, target.nd_qoe, budget);
    return true;
  }();
  (void)checked;
}

/// The offline reference arm: one full replay bisection (the per-probe
/// trigger scan + fallback-suffix replay is the cost being amortized).
void BM_CalibrateBisection(benchmark::State& state) {
  const CalibrationTarget& target = SharedTarget();
  CheckConformalMatchesTarget();
  const core::CalibrationConfig cfg = SharedBench().config().calibration;
  std::size_t iterations = 0;
  for (auto _ : state) {
    const core::CalibrationResult result = core::CalibrateAlpha(
        QoeAt, target.nd_qoe, 0.0, target.hi * 1.25, cfg);
    benchmark::DoNotOptimize(result.alpha);
    iterations = result.iterations;
  }
  state.counters["qoe_probes"] = static_cast<double>(iterations);
}
BENCHMARK(BM_CalibrateBisection)->Unit(benchmark::kMillisecond);

/// The sweep at its full iteration budget (tolerance 0): what the
/// bisection costs when the QoE surface is NOT flat enough for the
/// early exit - the worst case the conformal arm's bounded probe count
/// protects against.
void BM_CalibrateBisectionFullBudget(benchmark::State& state) {
  const CalibrationTarget& target = SharedTarget();
  CheckConformalMatchesTarget();
  core::CalibrationConfig cfg = SharedBench().config().calibration;
  cfg.tolerance = 0.0;
  std::size_t iterations = 0;
  for (auto _ : state) {
    const core::CalibrationResult result = core::CalibrateAlpha(
        QoeAt, target.nd_qoe, 0.0, target.hi * 1.25, cfg);
    benchmark::DoNotOptimize(result.alpha);
    iterations = result.iterations;
  }
  state.counters["qoe_probes"] = static_cast<double>(iterations);
}
BENCHMARK(BM_CalibrateBisectionFullBudget)->Unit(benchmark::kMillisecond);

/// The conformal-batch arm on the SAME recordings: nonconformity scan +
/// order statistic + bounded QoE refinement.
void BM_CalibrateConformalBatch(benchmark::State& state) {
  const CalibrationTarget& target = SharedTarget();
  CheckConformalMatchesTarget();
  core::Workbench& bench = SharedBench();
  const core::ConformalConfig conformal = ProductionConformal();
  std::size_t evaluations = 0;
  for (auto _ : state) {
    const core::ConformalResult result = core::ConformalAlphaMatchingQoe(
        core::SessionNonconformities(SharedReplay().Sessions(),
                                     bench.config().trigger_k,
                                     bench.config().trigger_l),
        conformal, QoeAt, target.nd_qoe);
    benchmark::DoNotOptimize(result.alpha);
    evaluations = result.evaluations;
  }
  state.counters["qoe_probes"] = static_cast<double>(evaluations);
}
BENCHMARK(BM_CalibrateConformalBatch)->Unit(benchmark::kMillisecond);

/// Pure rank selection (radius 0): the floor for the batch arm - no QoE
/// oracle at all, just the scan and the sort.
void BM_CalibrateConformalPure(benchmark::State& state) {
  core::Workbench& bench = SharedBench();
  SharedTarget();
  core::ConformalConfig conformal;
  conformal.refine_radius = 0;
  for (auto _ : state) {
    const core::ConformalResult result = core::ConformalAlpha(
        core::SessionNonconformities(SharedReplay().Sessions(),
                                     bench.config().trigger_k,
                                     bench.config().trigger_l),
        conformal);
    benchmark::DoNotOptimize(result.alpha);
  }
}
BENCHMARK(BM_CalibrateConformalPure)->Unit(benchmark::kMicrosecond);

/// Steady-state streaming cost: Observe() alone (arg 0) or with a
/// RefreshAlpha every `arg` observations (the serving cadence).
void BM_StreamingObserve(benchmark::State& state) {
  const auto refresh = static_cast<std::size_t>(state.range(0));
  core::StreamingConformal stream(0.05, 4096, 0.0);
  Rng rng(17);
  std::vector<double> xs(8192);
  for (double& x : xs) x = rng.Uniform(0.0, 2.0);
  std::size_t i = 0;
  for (auto _ : state) {
    stream.Observe(xs[i & (xs.size() - 1)]);
    ++i;
    if (refresh != 0 && i % refresh == 0) {
      benchmark::DoNotOptimize(stream.RefreshAlpha());
    }
  }
  benchmark::DoNotOptimize(stream.Alpha());
}
BENCHMARK(BM_StreamingObserve)->Arg(0)->Arg(16)->Unit(benchmark::kNanosecond);

/// One decision round over N sessions through the sharded service, with
/// the online-calibration arm off (arg1 == 0) or on (arg1 == 1). The
/// tentpole budget: the `On` row stays within 5% of the `Off` row.
void RunServeRound(benchmark::State& state, bool online) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Workbench& bench = SharedBench();
  const auto& bundle = bench.BundleFor(kTrain);
  core::SafeAgentConfig safety;
  safety.trigger.mode = core::TriggerMode::kWindowVariance;
  safety.trigger.k = bench.config().trigger_k;
  safety.trigger.l = bench.config().trigger_l;
  safety.trigger.alpha = bundle.alpha_pi;
  const auto model = serve::ServingModel::AgentEnsemble(
      bundle.agents, bench.config().ensemble_discard, bench.eval_video(),
      bench.layout(), safety);
  serve::DecisionServiceConfig cfg;
  cfg.shard_count = 8;
  cfg.online_calibration = online;
  serve::DecisionService service(model, cfg);

  // A pool of real decision states from one evaluation session.
  std::vector<mdp::State> pool;
  {
    auto env = bench.MakeEvalEnvironment();
    env.SetFixedTrace(
        bench.DatasetFor(traces::DatasetId::kExponential).test.front());
    auto policy = bench.MakePolicy(core::Scheme::kPensieve, kTrain);
    mdp::State s = env.Reset();
    bool done = false;
    while (!done) {
      pool.push_back(s);
      mdp::StepResult r = env.Step(policy->SelectAction(s));
      s = std::move(r.next_state);
      done = r.done;
    }
  }
  std::vector<serve::DecisionService::SessionId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = service.OpenSession();
  std::vector<serve::DecisionService::Request> requests(n);
  std::vector<mdp::Action> actions(n);
  for (std::size_t i = 0; i < n; ++i) requests[i] = {ids[i], &pool[i % pool.size()]};
  service.DecideBatch(requests, actions);  // untimed scratch warmup
  std::size_t round = 0;
  double wall_seconds = 0.0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      requests[i] = {ids[i], &pool[(i * 17 + round) % pool.size()]};
    }
    const auto start = std::chrono::steady_clock::now();
    service.DecideBatch(requests, actions);
    wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    benchmark::DoNotOptimize(actions.data());
    ++round;
  }
  if (wall_seconds > 0.0) {
    state.counters["decisions_per_s"] =
        static_cast<double>(state.iterations()) * static_cast<double>(n) /
        wall_seconds;
  }
  if (online) {
    state.counters["observations"] =
        static_cast<double>(service.CalibrationObservations());
  }
}

void BM_ServeCalibrationOff(benchmark::State& state) {
  RunServeRound(state, false);
}
void BM_ServeCalibrationOn(benchmark::State& state) {
  RunServeRound(state, true);
}
BENCHMARK(BM_ServeCalibrationOff)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeCalibrationOn)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

OSAP_BENCHMARK_MAIN_WITH_JSON("BENCH_calibration.json")
