// Ablation: the defaulting-threshold trade-off (paper Section 2.5).
//
// "Setting the defaulting threshold involves inherent tension between
// optimizing performance when the training and test environments are
// similar and controlling the possible damage when this is not so."
//
// We sweep the consecutive-steps parameter l and the variance threshold
// alpha (as multiples of the calibrated value) for the V-ensemble scheme
// trained on Gamma(2,2), reporting in-distribution QoE (payoff) against
// worst-case and mean OOD normalized score (risk). Expected shape: lower
// thresholds default more eagerly - less in-distribution payoff, better
// OOD floor; higher thresholds the reverse.
#include <algorithm>
#include <limits>

#include "bench_common.h"
#include "core/ensemble_estimators.h"

using namespace osap;
using core::Scheme;

namespace {

constexpr auto kTrain = traces::DatasetId::kGamma22;

double NormalizedOnTest(core::Workbench& bench, mdp::Policy& policy,
                        traces::DatasetId test) {
  auto env = bench.MakeEvalEnvironment();
  const double qoe =
      core::EvaluatePolicy(policy, env, bench.DatasetFor(test).test)
          .MeanQoe();
  const double random = bench.Evaluate(Scheme::kRandom, test, test).MeanQoe();
  const double bb =
      bench.Evaluate(Scheme::kBufferBased, test, test).MeanQoe();
  return core::NormalizedScore(qoe, random, bb);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: thresholds",
                     "risk/payoff frontier of the defaulting threshold");
  core::Workbench bench(bench::PaperConfig());
  const core::TrainedBundle& bundle = bench.BundleFor(kTrain);

  CsvWriter csv(bench::ResultsDir() / "ablation_thresholds.csv");
  csv.WriteHeader({"l", "alpha_scale", "in_dist_qoe", "ood_min_norm",
                   "ood_mean_norm"});
  TablePrinter table({"l", "alpha x", "in-dist QoE", "OOD min (norm)",
                      "OOD mean (norm)"});

  auto eval_env = bench.MakeEvalEnvironment();
  const auto& validation = bench.DatasetFor(kTrain).validation;

  for (std::size_t l : {1u, 3u, 5u}) {
    for (double scale : {0.25, 1.0, 4.0}) {
      auto estimator = std::make_shared<core::ValueEnsembleEstimator>(
          bundle.value_nets, bench.config().ensemble_discard);
      core::SafeAgentConfig cfg;
      cfg.trigger.mode = core::TriggerMode::kWindowVariance;
      cfg.trigger.k = bench.config().trigger_k;
      cfg.trigger.l = l;
      cfg.trigger.alpha = bundle.alpha_v * scale;
      core::SafeAgent agent(bench.MakePolicy(Scheme::kPensieve, kTrain),
                            bench.MakePolicy(Scheme::kBufferBased, kTrain),
                            estimator, cfg);

      const double in_dist =
          core::EvaluatePolicy(agent, eval_env, validation).MeanQoe();
      double ood_min = std::numeric_limits<double>::infinity();
      double ood_sum = 0.0;
      std::size_t ood_count = 0;
      for (traces::DatasetId test : traces::AllDatasetIds()) {
        if (test == kTrain) continue;
        const double score = NormalizedOnTest(bench, agent, test);
        ood_min = std::min(ood_min, score);
        ood_sum += score;
        ++ood_count;
      }
      const double ood_mean = ood_sum / static_cast<double>(ood_count);
      table.AddRow({std::to_string(l), TablePrinter::Num(scale, 2),
                    TablePrinter::Num(in_dist, 1),
                    TablePrinter::Num(ood_min, 2),
                    TablePrinter::Num(ood_mean, 2)});
      csv.WriteNumericRow({static_cast<double>(l), scale, in_dist, ood_min,
                           ood_mean});
    }
  }
  std::printf("\nV-ensemble trained on %s; alpha as a multiple of the "
              "calibrated value (%.3g):\n\n",
              traces::DatasetLabel(kTrain).c_str(), bundle.alpha_v);
  table.Print();
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "ablation_thresholds.csv").c_str());
  return 0;
}
