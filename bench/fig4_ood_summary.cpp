// Figure 4: Comparison of the safety-enhanced variants of Pensieve when
// out-of-distribution.
//
// Normalized max / min / mean / median over the 30 (train, test) pairs
// with train != test, for vanilla Pensieve and its three safety-enhanced
// variants. Expected shape (paper Section 3.4):
//   - every safety scheme beats vanilla Pensieve on min, mean and median;
//   - A-ensemble is dominated (worst min, mean below Random);
//   - ND is safest on min/mean; V-ensemble has the best max.
#include <map>

#include "bench_common.h"

using namespace osap;
using core::Scheme;

int main() {
  bench::PrintHeader("Figure 4",
                     "normalized OOD summary of the safety schemes");
  core::Workbench bench(bench::PaperConfig());
  CsvWriter csv(bench::ResultsDir() / "fig4_ood_summary.csv");
  csv.WriteHeader({"scheme", "min", "max", "mean", "median"});

  const std::vector<Scheme> schemes = {
      Scheme::kNoveltyDetection, Scheme::kAgentEnsemble,
      Scheme::kValueEnsemble, Scheme::kPensieve};

  TablePrinter table({"scheme", "min", "max", "mean", "median"});
  std::map<Scheme, Summary> summaries;
  for (Scheme scheme : schemes) {
    std::vector<double> scores;
    for (traces::DatasetId train : traces::AllDatasetIds()) {
      for (traces::DatasetId test : traces::AllDatasetIds()) {
        if (train == test) continue;
        scores.push_back(bench.NormalizedMean(scheme, train, test));
      }
    }
    const Summary s = Summarize(scores);
    summaries[scheme] = s;
    table.AddRow({core::SchemeName(scheme), TablePrinter::Num(s.min, 2),
                  TablePrinter::Num(s.max, 2), TablePrinter::Num(s.mean, 2),
                  TablePrinter::Num(s.median, 2)});
    csv.WriteRow({core::SchemeName(scheme), std::to_string(s.min),
                  std::to_string(s.max), std::to_string(s.mean),
                  std::to_string(s.median)});
  }
  std::printf("\nNormalized scores over the 30 OOD train/test pairs "
              "(0 = Random, 1 = BB):\n\n");
  table.Print();

  std::printf("\nShape checks (paper Section 3.4):\n");
  const Summary& vanilla = summaries[Scheme::kPensieve];
  for (Scheme s : core::SafetySchemes()) {
    const Summary& sum = summaries[s];
    std::printf("  %-11s beats vanilla on min/mean/median: %s/%s/%s\n",
                core::SchemeName(s).c_str(),
                sum.min > vanilla.min ? "yes" : "NO",
                sum.mean > vanilla.mean ? "yes" : "NO",
                sum.median > vanilla.median ? "yes" : "NO");
  }
  const Summary& nd = summaries[Scheme::kNoveltyDetection];
  const Summary& ae = summaries[Scheme::kAgentEnsemble];
  const Summary& ve = summaries[Scheme::kValueEnsemble];
  std::printf("  A-ensemble has the worst min of the three:   %s\n",
              (ae.min <= nd.min && ae.min <= ve.min) ? "yes" : "NO");
  std::printf("  ND min >= V-ensemble min (ND is safest):     %s\n",
              nd.min >= ve.min ? "yes" : "NO");
  std::printf("  V-ensemble max >= ND max (higher upside):    %s\n",
              ve.max >= nd.max ? "yes" : "NO");
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "fig4_ood_summary.csv").c_str());
  return 0;
}
