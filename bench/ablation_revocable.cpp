// Ablation: permanent vs revocable defaulting (DESIGN.md section 7).
//
// The paper defaults to BB for the remainder of the session once the
// trigger fires. A natural extension lets the agent return to the learned
// policy after the uncertainty signal stays quiet for a while. We compare
// the two modes with the ND scheme trained on Gamma(2,2):
//  - steady OOD (test = Exponential): permanent and revocable should tie
//    (the signal never goes quiet);
//  - a transient glitch (Gamma(2,2) trace with an embedded 80 s
//    exponential-rate dip): revocable should recover the post-glitch
//    in-distribution performance that permanent gives up.
#include <algorithm>
#include <limits>

#include "bench_common.h"

using namespace osap;
using core::Scheme;

namespace {

constexpr auto kTrain = traces::DatasetId::kGamma22;

/// A Gamma(2,2)-like trace with a low-rate dip in the middle.
traces::Trace GlitchTrace(std::uint64_t seed) {
  Rng rng(seed);
  GammaDistribution gamma(2.0, 2.0);
  ExponentialDistribution exponential(0.4);
  std::vector<double> samples;
  const std::size_t total = 960;
  for (std::size_t t = 0; t < total; ++t) {
    const bool glitch = t >= 300 && t < 380;
    const double raw =
        glitch ? exponential.Sample(rng) : gamma.Sample(rng);
    samples.push_back(std::clamp(raw, 0.05, 50.0));
  }
  return traces::Trace("glitch", 1.0, std::move(samples));
}

std::unique_ptr<core::SafeAgent> MakeNdAgent(core::Workbench& bench,
                                             core::DefaultingMode mode) {
  const core::TrainedBundle& bundle = bench.BundleFor(kTrain);
  auto estimator = std::make_shared<core::NoveltyDetector>(*bundle.novelty);
  estimator->Reset();
  core::SafeAgentConfig cfg;
  cfg.trigger.mode = core::TriggerMode::kBinary;
  cfg.trigger.l = bench.config().trigger_l;
  cfg.mode = mode;
  cfg.revoke_after = 15;
  return std::make_unique<core::SafeAgent>(
      bench.MakePolicy(Scheme::kPensieve, kTrain),
      bench.MakePolicy(Scheme::kBufferBased, kTrain), estimator, cfg);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: revocable defaulting",
                     "permanent vs revocable safety nets");
  core::Workbench bench(bench::PaperConfig());
  auto env = bench.MakeEvalEnvironment();

  CsvWriter csv(bench::ResultsDir() / "ablation_revocable.csv");
  csv.WriteHeader({"scenario", "mode", "mean_qoe", "defaulted_fraction"});
  TablePrinter table(
      {"scenario", "mode", "mean QoE", "defaulted fraction"});

  struct Scenario {
    std::string name;
    std::vector<traces::Trace> traces;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"steady OOD (exponential)",
       bench.DatasetFor(traces::DatasetId::kExponential).test});
  std::vector<traces::Trace> glitch_traces;
  for (std::uint64_t s = 0; s < 6; ++s) {
    glitch_traces.push_back(GlitchTrace(1000 + s));
  }
  scenarios.push_back({"transient glitch", std::move(glitch_traces)});
  scenarios.push_back({"in-distribution",
                       bench.DatasetFor(kTrain).test});

  for (const Scenario& scenario : scenarios) {
    for (core::DefaultingMode mode :
         {core::DefaultingMode::kPermanent,
          core::DefaultingMode::kRevocable}) {
      auto agent = MakeNdAgent(bench, mode);
      double qoe_sum = 0.0;
      double frac_sum = 0.0;
      for (const traces::Trace& trace : scenario.traces) {
        env.SetFixedTrace(trace);
        agent->Reset();
        mdp::State s = env.Reset();
        bool done = false;
        while (!done) {
          mdp::StepResult r = env.Step(agent->SelectAction(s));
          s = std::move(r.next_state);
          done = r.done;
        }
        qoe_sum += env.Qoe().Total();
        frac_sum += agent->DefaultedFraction();
      }
      const auto n = static_cast<double>(scenario.traces.size());
      const char* mode_name =
          mode == core::DefaultingMode::kPermanent ? "permanent"
                                                   : "revocable";
      table.AddRow({scenario.name, mode_name,
                    TablePrinter::Num(qoe_sum / n, 1),
                    TablePrinter::Num(frac_sum / n, 2)});
      csv.WriteRow({scenario.name, mode_name,
                    std::to_string(qoe_sum / n),
                    std::to_string(frac_sum / n)});
    }
  }
  std::printf("\nND safety net trained on %s (revoke after 15 quiet "
              "steps):\n\n",
              traces::DatasetLabel(kTrain).c_str());
  table.Print();
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "ablation_revocable.csv").c_str());
  return 0;
}
