// Extension: OSAP in a second application domain - internet congestion
// control (paper Section 5: "the exploration of online safety assurance in
// other application domains").
//
// Setup mirrors the ABR case study with the substitutions:
//   learned policy   Aurora-style A2C rate controller (Jay et al.,
//                    ICML '19 - the paper's reference [20])
//   default policy   AIMD (TCP-flavoured, throughput-agnostic)
//   naive baseline   Random rate multipliers
//   datasets         the same six throughput distributions, scaled x10 to
//                    bottleneck-link capacities
//   U_S              OC-SVM over windows of delivered-rate statistics
//   U_V              ensemble of externally-trained value networks
// Trained on Gamma(2,2); evaluated in-distribution and on three shifted
// distributions. Expected shape: the learned controller wins
// in-distribution, collapses under the capacity shift, and both safety
// nets bound the damage near AIMD's level.
#include <algorithm>
#include <map>

#include "bench_common.h"
#include "cc/aimd_policy.h"
#include "cc/cc_net.h"
#include "core/calibration.h"
#include "core/ensemble_estimators.h"
#include "core/novelty_detector.h"
#include "core/safe_agent.h"
#include "mdp/rollout.h"
#include "nn/serialize.h"
#include "policies/random_policy.h"
#include "rl/ensemble.h"

using namespace osap;

namespace {

constexpr double kCapacityScale = 10.0;
constexpr std::size_t kEnsembleSize = 5;
constexpr std::size_t kEnsembleDiscard = 2;
constexpr std::size_t kNdK = 30;  // synthetic training distribution

/// Greedy wrapper over a trained actor (the deployed controller).
class GreedyRlPolicy final : public mdp::StochasticPolicy {
 public:
  explicit GreedyRlPolicy(std::shared_ptr<nn::ActorCriticNet> net)
      : net_(std::move(net)) {}
  mdp::Action SelectAction(const mdp::State& s) override {
    const auto p = net_->ActionProbs(s);
    return static_cast<mdp::Action>(
        std::distance(p.begin(), std::max_element(p.begin(), p.end())));
  }
  std::vector<double> ActionDistribution(const mdp::State& s) override {
    return net_->ActionProbs(s);
  }
  std::string Name() const override { return "aurora"; }

 private:
  std::shared_ptr<nn::ActorCriticNet> net_;
};

double MeanEpisodeReward(mdp::Policy& policy, cc::CcEnvironment& env,
                         std::span<const traces::Trace> traces_) {
  double total = 0.0;
  for (const traces::Trace& trace : traces_) {
    env.SetFixedTrace(trace);
    total += mdp::Rollout(env, policy).TotalReward();
  }
  return total / static_cast<double>(traces_.size());
}

}  // namespace

int main() {
  bench::PrintHeader("Extension: congestion control",
                     "OSAP applied to an Aurora-style rate controller");
  const cc::CcEnvironmentConfig cfg = [] {
    cc::CcEnvironmentConfig c;
    c.initial_rate_mbps = 5.0;
    c.max_rate_mbps = 100.0;
    return c;
  }();

  const auto train_id = traces::DatasetId::kGamma22;
  const traces::Dataset raw = traces::BuildDataset(train_id);
  const auto train_traces = traces::ScaleTraces(raw.train, kCapacityScale);
  const auto validation = traces::ScaleTraces(raw.validation, kCapacityScale);

  // Train the agent ensemble (member 0 deploys), with a disk cache.
  const std::filesystem::path cache = "osap_cache/cc_v1";
  cc::CcEnvironment train_env(cfg);
  train_env.SetTracePool(train_traces, 11);
  const rl::ActorCriticFactory factory = [&cfg](Rng& rng) {
    return cc::MakeCcActorCritic(cfg.layout, cfg.rate_multipliers.size(),
                                 {}, rng);
  };
  rl::A2cConfig a2c;
  a2c.episodes = 4000;
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents;
  bool cached = true;
  for (std::size_t m = 0; m < kEnsembleSize && cached; ++m) {
    cached = std::filesystem::exists(cache /
                                     ("agent_" + std::to_string(m) + ".bin"));
  }
  if (cached) {
    try {
      Rng dummy(0);
      for (std::size_t m = 0; m < kEnsembleSize; ++m) {
        auto net = std::make_shared<nn::ActorCriticNet>(factory(dummy));
        nn::LoadParamsFromFile(
            cache / ("agent_" + std::to_string(m) + ".bin"),
            net->AllParams());
        agents.push_back(std::move(net));
      }
      std::printf("loaded %zu agents from cache\n", agents.size());
    } catch (const std::exception&) {
      agents.clear();
      cached = false;
    }
  }
  if (!cached) {
    std::printf("training %zu Aurora-style agents (%zu episodes each)...\n",
                kEnsembleSize, a2c.episodes);
    rl::AgentEnsembleResult ensemble =
        rl::TrainAgentEnsemble(kEnsembleSize, factory, train_env, a2c, 31);
    agents = std::move(ensemble.members);
    for (std::size_t m = 0; m < agents.size(); ++m) {
      nn::SaveParamsToFile(cache / ("agent_" + std::to_string(m) + ".bin"),
                           agents[m]->AllParams());
    }
  }

  auto deployed = std::make_shared<GreedyRlPolicy>(agents.front());
  auto aimd = std::make_shared<cc::AimdPolicy>(cfg.layout,
                                               cfg.rate_multipliers);

  // U_S: OC-SVM over the deployed controller's delivered-rate windows.
  core::NoveltyDetectorConfig nd_cfg;
  nd_cfg.k = kNdK;
  const cc::CcStateLayout layout = cfg.layout;
  auto nd = std::make_shared<core::NoveltyDetector>(
      nd_cfg, [layout](const mdp::State& s) {
        return layout.LatestDeliveredMbps(s);
      });
  {
    cc::CcEnvironment env(cfg);
    std::vector<std::vector<double>> features;
    for (const traces::Trace& trace : train_traces) {
      env.SetFixedTrace(trace);
      deployed->Reset();
      std::vector<double> delivered;
      mdp::State s = env.Reset();
      bool done = false;
      while (!done) {
        mdp::StepResult r = env.Step(deployed->SelectAction(s));
        delivered.push_back(env.LastReport().delivered_mbps);
        s = std::move(r.next_state);
        done = r.done;
      }
      for (auto& f :
           core::NoveltyDetector::ExtractFeatures(delivered, nd_cfg)) {
        features.push_back(std::move(f));
      }
    }
    nd->Fit(features);
    std::printf("fitted OC-SVM (%zu support vectors)\n",
                nd->model().SupportVectorCount());
  }

  // U_V: value ensemble on the deployed agent's experience.
  std::printf("training the U_V value ensemble...\n");
  rl::ValueTrainConfig value_cfg;
  auto value_nets = rl::TrainValueEnsemble(
      kEnsembleSize,
      [&cfg](Rng& rng) { return cc::BuildCcValueNet(cfg.layout, {}, rng); },
      train_env, *deployed, value_cfg, 77);

  // Safety nets: ND (binary, l = 3) and U_V (variance, alpha calibrated
  // to the ND in-distribution target, paper Section 2.5).
  auto make_nd_agent = [&] {
    auto estimator = std::make_shared<core::NoveltyDetector>(*nd);
    estimator->Reset();
    core::SafeAgentConfig sa;
    sa.trigger.mode = core::TriggerMode::kBinary;
    sa.trigger.l = 3;
    return std::make_shared<core::SafeAgent>(deployed, aimd, estimator, sa);
  };
  cc::CcEnvironment eval_env(cfg);
  const double nd_in_dist =
      MeanEpisodeReward(*make_nd_agent(), eval_env, validation);

  auto make_uv_agent = [&](double alpha) {
    auto estimator = std::make_shared<core::ValueEnsembleEstimator>(
        value_nets, kEnsembleDiscard);
    core::SafeAgentConfig sa;
    sa.trigger.mode = core::TriggerMode::kWindowVariance;
    sa.trigger.k = 5;
    sa.trigger.l = 3;
    sa.trigger.alpha = alpha;
    return std::make_shared<core::SafeAgent>(deployed, aimd, estimator, sa);
  };
  double alpha_v = 0.0;
  {
    core::ValueEnsembleEstimator probe(value_nets, kEnsembleDiscard);
    const double hi = core::MaxWindowVariance(probe, *deployed, eval_env,
                                              validation, 5);
    if (hi > 0.0) {
      alpha_v = core::CalibrateAlpha(
                    [&](double a) {
                      return MeanEpisodeReward(*make_uv_agent(a), eval_env,
                                               validation);
                    },
                    nd_in_dist, 0.0, hi * 1.25)
                    .alpha;
    }
    std::printf("calibrated alpha_v = %.4g (ND in-dist reward %.0f)\n",
                alpha_v, nd_in_dist);
  }

  // Evaluation: every scheme on every (x10-scaled) test distribution.
  CsvWriter csv(bench::ResultsDir() / "ext_congestion_control.csv");
  csv.WriteHeader({"test", "scheme", "mean_reward", "normalized"});
  TablePrinter table({"test dataset", "aurora", "aurora+nd", "aurora+uv",
                      "aimd", "random", "aurora norm."});
  policies::RandomPolicy random(cfg.rate_multipliers.size(), 99);

  for (traces::DatasetId test_id :
       {traces::DatasetId::kGamma22, traces::DatasetId::kBelgium4g,
        traces::DatasetId::kNorway3g, traces::DatasetId::kExponential}) {
    const auto test_traces = traces::ScaleTraces(
        traces::BuildDataset(test_id).test, kCapacityScale);
    std::map<std::string, double> rewards;
    rewards["aurora"] = MeanEpisodeReward(*deployed, eval_env, test_traces);
    rewards["aurora+nd"] =
        MeanEpisodeReward(*make_nd_agent(), eval_env, test_traces);
    rewards["aurora+uv"] =
        MeanEpisodeReward(*make_uv_agent(alpha_v), eval_env, test_traces);
    rewards["aimd"] = MeanEpisodeReward(*aimd, eval_env, test_traces);
    rewards["random"] = MeanEpisodeReward(random, eval_env, test_traces);
    const double norm = core::NormalizedScore(
        rewards["aurora"], rewards["random"], rewards["aimd"]);
    table.AddRow({traces::DatasetLabel(test_id) +
                      (test_id == train_id ? " (in-dist)" : ""),
                  TablePrinter::Num(rewards["aurora"], 0),
                  TablePrinter::Num(rewards["aurora+nd"], 0),
                  TablePrinter::Num(rewards["aurora+uv"], 0),
                  TablePrinter::Num(rewards["aimd"], 0),
                  TablePrinter::Num(rewards["random"], 0),
                  TablePrinter::Num(norm, 2)});
    for (const auto& [scheme, reward] : rewards) {
      csv.WriteRow({traces::DatasetName(test_id), scheme,
                    std::to_string(reward),
                    std::to_string(core::NormalizedScore(
                        reward, rewards["random"], rewards["aimd"]))});
    }
  }
  std::printf("\nMean episode reward (Aurora objective; x10-scaled "
              "links, trained on Gamma(2,2)):\n\n");
  table.Print();
  std::printf("\nShape: the learned controller wins in-distribution, is "
              "dominated by AIMD after the capacity shift, and the safety "
              "nets pull its worst cases toward AIMD's level - the ABR "
              "story transplanted to a second domain.\n");
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "ext_congestion_control.csv").c_str());
  return 0;
}
