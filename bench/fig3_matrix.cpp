// Figure 3: Pensieve's performance across all datasets.
//
// The full 6x6 train/test matrix of normalized scores (0 = Random's QoE on
// the test set, 1 = BB's). The paper plots these on an axis linear inside
// [-1, 1] and log-scaled outside; the table prints both the raw normalized
// score and that axis value. Expected shape: the diagonal (in-distribution)
// is > 1; off-diagonal entries are typically < 1 and often < 0.
#include "bench_common.h"

using namespace osap;
using core::Scheme;

int main() {
  bench::PrintHeader("Figure 3",
                     "normalized Pensieve score for every train/test pair");
  core::Workbench bench(bench::PaperConfig());
  CsvWriter csv(bench::ResultsDir() / "fig3_matrix.csv");
  csv.WriteHeader({"train", "test", "normalized_score", "loglinear_axis"});

  std::vector<std::string> headers = {"train \\ test"};
  for (traces::DatasetId test : traces::AllDatasetIds()) {
    headers.push_back(traces::DatasetName(test));
  }
  TablePrinter table(headers);

  std::size_t diag_above_one = 0;
  std::size_t offdiag_below_bb = 0;
  std::size_t offdiag_total = 0;
  for (traces::DatasetId train : traces::AllDatasetIds()) {
    std::vector<std::string> row = {traces::DatasetName(train)};
    for (traces::DatasetId test : traces::AllDatasetIds()) {
      const double score =
          bench.NormalizedMean(Scheme::kPensieve, train, test);
      row.push_back(TablePrinter::Num(score, 2));
      csv.WriteRow({traces::DatasetName(train), traces::DatasetName(test),
                    std::to_string(score),
                    std::to_string(core::LogLinearAxis(score))});
      if (train == test) {
        if (score > 1.0) ++diag_above_one;
      } else {
        ++offdiag_total;
        if (score < 1.0) ++offdiag_below_bb;
      }
    }
    table.AddRow(std::move(row));
  }

  std::printf("\nNormalized score (0 = Random, 1 = BB); rows = training "
              "distribution:\n\n");
  table.Print();
  std::printf("\nShape checks (paper Section 3.3):\n");
  std::printf("  in-distribution scores above BB (score > 1):   %zu/6\n",
              diag_above_one);
  std::printf("  OOD scores below BB (score < 1):               %zu/%zu\n",
              offdiag_below_bb, offdiag_total);
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "fig3_matrix.csv").c_str());
  return 0;
}
