// JSON sidecar output for the google-benchmark micro-benches.
//
// Each micro-bench binary prints the usual console table AND drops a
// machine-readable `BENCH_<name>.json` next to its working directory: a
// flat {"benchmark name": nanoseconds_per_op} map that scripts can diff
// across commits without parsing console output. Custom counters are
// emitted as extra `"name:counter"` entries - except rate counters
// (`*_per_s`), which are console-only: every sidecar entry must be
// lower-is-better so bench_diff.py's regression direction stays uniform.
// The OSAP_BENCH_JSON environment variable overrides the sidecar path, so
// several ctest gates can run one binary with different filters without
// clobbering each other's baselines.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.h"

namespace osap::bench {

/// Console reporter that also accumulates per-iteration timings and, on
/// Finalize, writes them as a flat JSON object (name -> ns/op, plus
/// name:counter -> value for non-rate counters). Aggregate rows
/// (mean/median/stddev from --benchmark_repetitions) are excluded so the
/// map stays one-entry-per-benchmark.
class JsonSidecarReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonSidecarReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double ns_per_op =
          run.iterations == 0
              ? 0.0
              : run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9;
      entries_.emplace_back(run.benchmark_name(), ns_per_op);
      for (const auto& [counter_name, counter] : run.counters) {
        // Rates invert the bigger-is-worse convention the diff gates
        // assume; keep them out of the gated sidecar.
        if (std::string_view(counter_name).ends_with("_per_s")) continue;
        entries_.emplace_back(run.benchmark_name() + ":" + counter_name,
                              static_cast<double>(counter.value));
      }
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    OSAP_CHECK_MSG(f != nullptr, "JsonSidecarReporter: cannot open output");
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.3f%s\n", Escaped(entries_[i].first).c_str(),
                   entries_[i].second, i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu entries, ns/op)\n", path_.c_str(),
                entries_.size());
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<std::pair<std::string, double>> entries_;
};

/// Shared main() body: run all registered benchmarks through the sidecar
/// reporter. Use instead of BENCHMARK_MAIN(). The OSAP_BENCH_JSON
/// environment variable, when set, overrides `json_path`.
inline int RunWithJsonSidecar(int argc, char** argv,
                              const std::string& json_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* override_path = std::getenv("OSAP_BENCH_JSON");
  JsonSidecarReporter reporter(override_path != nullptr ? override_path
                                                        : json_path);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace osap::bench

/// Drop-in replacement for BENCHMARK_MAIN() that also writes `json_path`.
#define OSAP_BENCHMARK_MAIN_WITH_JSON(json_path)                        \
  int main(int argc, char** argv) {                                     \
    return osap::bench::RunWithJsonSidecar(argc, argv, (json_path));    \
  }
