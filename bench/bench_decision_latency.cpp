// Online/offline cost micro-benchmarks (paper Section 3.1, "Remark:
// offline and online running times").
//
// The paper reports per-decision costs of ~0.5 ms (U_S), ~3 ms (U_pi) and
// ~4 ms (U_V) on a desktop CPU against TensorFlow models, and offline
// training of <8 s (OC-SVM), ~8 h (RL agent) and ~4 h (value function).
// Absolute numbers differ on this substrate (small from-scratch networks,
// no Python); the claim being reproduced is that every online decision is
// orders of magnitude faster than the seconds-granularity ABR decision
// cadence.
//
// Uses the shared ./osap_cache artifacts (trains them on first run).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.h"
#include "bench_json.h"
#include "core/ensemble_estimators.h"
#include "core/novelty_detector.h"
#include "mdp/rollout.h"
#include "policies/buffer_based.h"
#include "policies/mpc.h"
#include "policies/pensieve_policy.h"
#include "rl/a2c.h"
#include "svm/ocsvm.h"

using namespace osap;

namespace {

core::Workbench& SharedBench() {
  static auto* bench = new core::Workbench(bench::PaperConfig());
  return *bench;
}

constexpr auto kTrain = traces::DatasetId::kGamma22;

/// Representative decision states: one full evaluation session driven by
/// the trained agent on an OOD trace.
const std::vector<mdp::State>& SessionStates() {
  static const std::vector<mdp::State>* states = [] {
    auto* out = new std::vector<mdp::State>();
    core::Workbench& bench = SharedBench();
    auto env = bench.MakeEvalEnvironment();
    env.SetFixedTrace(
        bench.DatasetFor(traces::DatasetId::kExponential).test.front());
    auto policy = bench.MakePolicy(core::Scheme::kPensieve, kTrain);
    mdp::State s = env.Reset();
    bool done = false;
    while (!done) {
      out->push_back(s);
      mdp::StepResult r = env.Step(policy->SelectAction(s));
      s = std::move(r.next_state);
      done = r.done;
    }
    return out;
  }();
  return *states;
}

void BM_DecisionNoveltyDetection(benchmark::State& state) {
  const auto& bundle = SharedBench().BundleFor(kTrain);
  core::NoveltyDetector detector(*bundle.novelty);
  detector.Reset();
  const auto& states = SessionStates();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Score(states[i]));
    i = (i + 1) % states.size();
  }
}
BENCHMARK(BM_DecisionNoveltyDetection)->Unit(benchmark::kMicrosecond);

void BM_DecisionAgentEnsemble(benchmark::State& state) {
  const auto& bundle = SharedBench().BundleFor(kTrain);
  core::AgentEnsembleEstimator estimator(
      bundle.agents, SharedBench().config().ensemble_discard);
  const auto& states = SessionStates();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Score(states[i]));
    i = (i + 1) % states.size();
  }
}
BENCHMARK(BM_DecisionAgentEnsemble)->Unit(benchmark::kMicrosecond);

void BM_DecisionValueEnsemble(benchmark::State& state) {
  const auto& bundle = SharedBench().BundleFor(kTrain);
  core::ValueEnsembleEstimator estimator(
      bundle.value_nets, SharedBench().config().ensemble_discard);
  const auto& states = SessionStates();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Score(states[i]));
    i = (i + 1) % states.size();
  }
}
BENCHMARK(BM_DecisionValueEnsemble)->Unit(benchmark::kMicrosecond);

void BM_DecisionPensieveActor(benchmark::State& state) {
  auto policy = SharedBench().MakePolicy(core::Scheme::kPensieve, kTrain);
  const auto& states = SessionStates();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->SelectAction(states[i]));
    i = (i + 1) % states.size();
  }
}
BENCHMARK(BM_DecisionPensieveActor)->Unit(benchmark::kMicrosecond);

void BM_DecisionBufferBased(benchmark::State& state) {
  core::Workbench& bench = SharedBench();
  policies::BufferBasedPolicy bb(bench.eval_video(), bench.layout());
  const auto& states = SessionStates();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bb.SelectAction(states[i]));
    i = (i + 1) % states.size();
  }
}
BENCHMARK(BM_DecisionBufferBased)->Unit(benchmark::kMicrosecond);

void BM_DecisionMpc(benchmark::State& state) {
  core::Workbench& bench = SharedBench();
  policies::MpcPolicy mpc(bench.eval_video(), bench.layout());
  const auto& states = SessionStates();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpc.SelectAction(states[i]));
    i = (i + 1) % states.size();
  }
}
BENCHMARK(BM_DecisionMpc)->Unit(benchmark::kMicrosecond);

/// The raw U_S kernel by itself: one DecisionValue over the fitted
/// model's support vectors (the contiguous linear-scan hot path).
void BM_DecisionOcSvmKernel(benchmark::State& state) {
  const auto& bundle = SharedBench().BundleFor(kTrain);
  const svm::OneClassSvm& model = bundle.novelty->model();
  // k interleaved [mean, stddev] pairs, in-distribution-ish values.
  std::vector<double> x(model.Dimension());
  for (std::size_t d = 0; d < x.size(); ++d) {
    x[d] = d % 2 == 0 ? 3.0 : 0.5;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.DecisionValue(x));
  }
}
BENCHMARK(BM_DecisionOcSvmKernel)->Unit(benchmark::kNanosecond);

/// Offline cost: fitting the OC-SVM on the cached training features'
/// scale (paper: < 8 seconds).
void BM_OfflineOcSvmFit(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::vector<double>> features;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> f;
    for (int d = 0; d < 10; ++d) f.push_back(rng.Normal(3.0, 0.5));
    features.push_back(std::move(f));
  }
  svm::OcSvmConfig cfg;
  // The 8000-point arg probes the working-set solver past the default
  // 3000-sample subsampling cap (the smaller args are unaffected).
  cfg.max_samples = std::max<std::size_t>(cfg.max_samples, n);
  for (auto _ : state) {
    svm::OneClassSvm model(cfg);
    model.Fit(features);
    benchmark::DoNotOptimize(model.rho());
  }
}
BENCHMARK(BM_OfflineOcSvmFit)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

/// Offline cost: one A2C training episode (paper: hours end-to-end).
void BM_OfflineA2cEpisode(benchmark::State& state) {
  core::Workbench& bench = SharedBench();
  auto env = bench.MakeTrainEnvironment(kTrain);
  Rng rng(1);
  auto net = policies::MakePensieveActorCritic(
      bench.layout(), bench.config().net, rng);
  rl::A2cConfig cfg = bench.config().a2c;
  for (auto _ : state) {
    cfg.episodes = 1;
    cfg.seed += 1;
    benchmark::DoNotOptimize(rl::TrainA2c(net, env, cfg));
  }
}
BENCHMARK(BM_OfflineA2cEpisode)->Unit(benchmark::kMillisecond);

}  // namespace

OSAP_BENCHMARK_MAIN_WITH_JSON("BENCH_decision_latency.json")
