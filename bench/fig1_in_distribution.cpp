// Figure 1: Pensieve with and without safety assurance vs. BB when the
// training and test distributions are the same.
//
// For each of the six datasets, every scheme streams the dataset's held-out
// test traces after training on its training split. Expected shape (paper
// Section 3.2): Pensieve > {ND, A-ensemble, V-ensemble} > BB, with the
// three safety schemes approximately equal (they are calibrated to match).
#include "bench_common.h"

using namespace osap;
using core::Scheme;

int main() {
  bench::PrintHeader("Figure 1",
                     "in-distribution QoE of all schemes vs BB");
  core::Workbench bench(bench::PaperConfig());

  const std::vector<Scheme> schemes = {
      Scheme::kPensieve, Scheme::kNoveltyDetection, Scheme::kAgentEnsemble,
      Scheme::kValueEnsemble, Scheme::kBufferBased};

  TablePrinter table({"dataset", "pensieve", "nd", "a_ensemble",
                      "v_ensemble", "buffer_based"});
  CsvWriter csv(bench::ResultsDir() / "fig1_in_distribution.csv");
  csv.WriteHeader({"dataset", "scheme", "mean_qoe"});

  for (traces::DatasetId id : traces::AllDatasetIds()) {
    std::vector<std::string> row = {traces::DatasetLabel(id)};
    for (Scheme scheme : schemes) {
      const double qoe = bench.Evaluate(scheme, id, id).MeanQoe();
      row.push_back(TablePrinter::Num(qoe, 1));
      csv.WriteRow({traces::DatasetName(id), core::SchemeName(scheme),
                    std::to_string(qoe)});
    }
    table.AddRow(std::move(row));
  }
  std::printf("\nMean session QoE on the test split (train == test):\n\n");
  table.Print();

  // The paper's headline checks for this figure.
  std::printf("\nShape checks (paper Section 3.2):\n");
  std::size_t pensieve_beats_bb = 0;
  std::size_t safety_between = 0;
  for (traces::DatasetId id : traces::AllDatasetIds()) {
    const double p = bench.Evaluate(Scheme::kPensieve, id, id).MeanQoe();
    const double b = bench.Evaluate(Scheme::kBufferBased, id, id).MeanQoe();
    if (p > b) ++pensieve_beats_bb;
    for (Scheme s : core::SafetySchemes()) {
      const double q = bench.Evaluate(s, id, id).MeanQoe();
      if (q <= p && q >= std::min(b, p) - 0.15 * std::abs(b)) {
        ++safety_between;
      }
    }
  }
  std::printf("  Pensieve beats BB in-distribution: %zu/6 datasets\n",
              pensieve_beats_bb);
  std::printf("  safety variants at/below Pensieve, near-or-above BB: "
              "%zu/18 scheme-dataset pairs\n",
              safety_between);
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "fig1_in_distribution.csv").c_str());
  return 0;
}
