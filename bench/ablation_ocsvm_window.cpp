// Ablation: the ND sample window k (paper Section 3.1).
//
// The paper uses k = 5 latest [mean, stddev] pairs for the empirical
// datasets and k = 30 for the synthetic ones, "attributed to the high
// variance in these distributions". We sweep k for one empirical
// (Norway 3G) and one synthetic (Gamma(2,2)) training distribution and
// report in-distribution QoE and OOD min/mean normalized scores.
#include <algorithm>
#include <limits>

#include "bench_common.h"

#include "policies/pensieve_policy.h"

using namespace osap;
using core::Scheme;

namespace {

/// Refits the OC-SVM for a specific window configuration, reusing the
/// bundle's trained agent to collect training-session throughputs.
std::shared_ptr<core::NoveltyDetector> FitDetector(
    core::Workbench& bench, traces::DatasetId train, std::size_t k) {
  core::NoveltyDetectorConfig cfg;
  cfg.throughput_window = bench.config().nd_window;
  cfg.k = k;
  cfg.svm.nu = bench.config().nd_nu;
  auto detector =
      std::make_shared<core::NoveltyDetector>(cfg, bench.layout());

  const core::TrainedBundle& bundle = bench.BundleFor(train);
  auto env = bench.MakeTrainEnvironment(train);
  policies::PensievePolicy driver(bundle.agents.front(),
                                  policies::ActionSelection::kGreedy, 0);
  std::vector<std::vector<double>> features;
  for (const traces::Trace& trace : bench.DatasetFor(train).train) {
    env.SetFixedTrace(trace);
    driver.Reset();
    std::vector<double> throughputs;
    mdp::State s = env.Reset();
    bool done = false;
    while (!done) {
      mdp::StepResult r = env.Step(driver.SelectAction(s));
      throughputs.push_back(env.LastDownload().throughput_mbps);
      s = std::move(r.next_state);
      done = r.done;
    }
    for (auto& f : core::NoveltyDetector::ExtractFeatures(throughputs, cfg)) {
      features.push_back(std::move(f));
    }
  }
  detector->Fit(features);
  return detector;
}

double NormalizedOnTest(core::Workbench& bench, mdp::Policy& policy,
                        traces::DatasetId test) {
  auto env = bench.MakeEvalEnvironment();
  const double qoe =
      core::EvaluatePolicy(policy, env, bench.DatasetFor(test).test)
          .MeanQoe();
  const double random = bench.Evaluate(Scheme::kRandom, test, test).MeanQoe();
  const double bb =
      bench.Evaluate(Scheme::kBufferBased, test, test).MeanQoe();
  return core::NormalizedScore(qoe, random, bb);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: OC-SVM window k",
                     "ND sample length vs detection quality");
  core::Workbench bench(bench::PaperConfig());
  CsvWriter csv(bench::ResultsDir() / "ablation_ocsvm_window.csv");
  csv.WriteHeader(
      {"train", "k", "in_dist_qoe", "ood_min_norm", "ood_mean_norm"});
  TablePrinter table({"train dataset", "k", "in-dist QoE",
                      "OOD min (norm)", "OOD mean (norm)"});

  for (traces::DatasetId train :
       {traces::DatasetId::kNorway3g, traces::DatasetId::kGamma22}) {
    auto eval_env = bench.MakeEvalEnvironment();
    const auto& validation = bench.DatasetFor(train).validation;
    for (std::size_t k : {1u, 5u, 10u, 30u}) {
      auto detector = FitDetector(bench, train, k);
      core::SafeAgentConfig cfg;
      cfg.trigger.mode = core::TriggerMode::kBinary;
      cfg.trigger.l = bench.config().trigger_l;
      core::SafeAgent agent(bench.MakePolicy(Scheme::kPensieve, train),
                            bench.MakePolicy(Scheme::kBufferBased, train),
                            detector, cfg);
      const double in_dist =
          core::EvaluatePolicy(agent, eval_env, validation).MeanQoe();
      double ood_min = std::numeric_limits<double>::infinity();
      double ood_sum = 0.0;
      std::size_t n = 0;
      for (traces::DatasetId test : traces::AllDatasetIds()) {
        if (test == train) continue;
        const double score = NormalizedOnTest(bench, agent, test);
        ood_min = std::min(ood_min, score);
        ood_sum += score;
        ++n;
      }
      table.AddRow({traces::DatasetLabel(train), std::to_string(k),
                    TablePrinter::Num(in_dist, 1),
                    TablePrinter::Num(ood_min, 2),
                    TablePrinter::Num(ood_sum / static_cast<double>(n), 2)});
      csv.WriteRow({traces::DatasetName(train), std::to_string(k),
                    std::to_string(in_dist), std::to_string(ood_min),
                    std::to_string(ood_sum / static_cast<double>(n))});
    }
  }
  std::printf("\nND with varying k (paper: k = 5 empirical / 30 "
              "synthetic):\n\n");
  table.Print();
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "ablation_ocsvm_window.csv").c_str());
  return 0;
}
