// Shared setup for the figure-reproduction benches.
//
// All figure benches run the paper-scale configuration (the
// WorkbenchConfig defaults: six datasets of 40 traces, 240-chunk sessions,
// ensembles of 5, 2000 A2C episodes per agent) and share one on-disk
// artifact cache ("./osap_cache"): the first bench to run trains
// everything, later benches load. Each bench prints the rows/series of its
// paper figure and writes the same data as CSV under ./results/.
#pragma once

#include <filesystem>
#include <string>

#include "core/normalization.h"
#include "core/workbench.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/table.h"

namespace osap::bench {

/// The paper-scale configuration: WorkbenchConfig defaults, cache enabled.
inline core::WorkbenchConfig PaperConfig() {
  core::WorkbenchConfig cfg;
  cfg.use_cache = true;
  cfg.cache_dir = "osap_cache";
  return cfg;
}

/// Where benches drop their CSV exports.
inline std::filesystem::path ResultsDir() {
  const std::filesystem::path dir = "results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Banner printed by every figure bench.
inline void PrintHeader(const std::string& figure,
                        const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s - %s\n", figure.c_str(), description.c_str());
  std::printf("(Rotman, Schapira, Tamar - Online Safety Assurance for\n");
  std::printf(" Learning-Augmented Systems, HotNets '20)\n");
  std::printf("==============================================================\n");
}

}  // namespace osap::bench
