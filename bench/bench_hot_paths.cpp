// Hot-path micro-benchmarks for the optimized kernels: blocked MatMul,
// tiled Transposed, batched ensemble inference vs the old per-member
// loop, the contiguous OC-SVM decision scan, and multi-trace evaluation
// under the thread pool (serial vs ParallelFor rollouts).
//
// Standalone: builds untrained nets and generated traces, so it needs no
// osap_cache and runs in seconds. Writes BENCH_hot_paths.json.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_json.h"

#include "abr/abr_environment.h"
#include "core/evaluation.h"
#include "nn/actor_critic_net.h"
#include "nn/ensemble_forward.h"
#include "nn/matrix.h"
#include "policies/buffer_based.h"
#include "policies/pensieve_net.h"
#include "svm/ocsvm.h"
#include "traces/generators.h"
#include "util/thread_pool.h"

using namespace osap;

namespace {

nn::Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng& rng) {
  nn::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m.At(i, j) = rng.Normal(0.0, 1.0);
  return m;
}

/// MatMul over the shapes the inference and training paths actually hit:
/// 1xN row-vector chains (online decisions), mid-size square (training
/// batches), and the 5-row batched-ensemble shape.
void BM_MatMul(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  Rng rng(1);
  const nn::Matrix a = RandomMatrix(m, k, rng);
  const nn::Matrix b = RandomMatrix(k, n, rng);
  nn::Matrix out;
  for (auto _ : state) {
    a.MatMulInto(b, out);
    benchmark::DoNotOptimize(out.At(0, 0));
  }
}
BENCHMARK(BM_MatMul)
    ->Args({1, 25, 128})
    ->Args({5, 25, 128})
    ->Args({64, 64, 64})
    ->Args({128, 128, 128})
    ->Args({240, 128, 6});

void BM_Transposed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const nn::Matrix a = RandomMatrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Transposed());
  }
}
BENCHMARK(BM_Transposed)->Arg(64)->Arg(256);

/// The old U_pi inner loop: five sequential per-member forwards.
void BM_EnsembleForwardSequential(benchmark::State& state) {
  Rng rng(1);
  abr::AbrStateLayout layout;
  std::vector<std::unique_ptr<nn::ActorCriticNet>> members;
  for (int m = 0; m < 5; ++m)
    members.push_back(std::make_unique<nn::ActorCriticNet>(
        policies::MakePensieveActorCritic(layout, {}, rng)));
  const std::vector<double> s(layout.Size(), 0.25);
  for (auto _ : state) {
    for (const auto& member : members)
      benchmark::DoNotOptimize(member->ActionProbs(s));
  }
}
BENCHMARK(BM_EnsembleForwardSequential)->Unit(benchmark::kMicrosecond);

/// The new U_pi inner loop: one fused pass over the packed five-member
/// weights (what AgentEnsembleEstimator::Score runs per decision).
void BM_EnsembleForwardBatched(benchmark::State& state) {
  Rng rng(1);
  abr::AbrStateLayout layout;
  std::vector<std::unique_ptr<nn::ActorCriticNet>> members;
  std::vector<const nn::CompositeNet*> actors;
  for (int m = 0; m < 5; ++m) {
    members.push_back(std::make_unique<nn::ActorCriticNet>(
        policies::MakePensieveActorCritic(layout, {}, rng)));
    actors.push_back(&members.back()->actor());
  }
  const nn::BatchedEnsemble batched(actors);
  nn::InferScratch scratch;
  const std::vector<double> s(layout.Size(), 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(batched.Infer(s, scratch).At(0, 0));
  }
}
BENCHMARK(BM_EnsembleForwardBatched)->Unit(benchmark::kMicrosecond);

/// The backward-pass kernels at the Pensieve trunk's training shapes:
/// dW = x^T dy (TN, accumulating into the existing grad) and dx = dy W^T
/// (NT), for the 240-row episode batch through the 256->32 trunk and the
/// 32->6 actor head. These are the products Linear::Backward issues; the
/// benchmark pins the win from never materializing Transposed() copies.
void BM_PensieveBackwardKernels(benchmark::State& state) {
  Rng rng(3);
  const nn::Matrix x = RandomMatrix(240, 256, rng);   // trunk input
  const nn::Matrix dy = RandomMatrix(240, 32, rng);   // trunk output grad
  const nn::Matrix w = RandomMatrix(256, 32, rng);    // trunk weight
  const nn::Matrix xh = RandomMatrix(240, 32, rng);   // head input
  const nn::Matrix dyh = RandomMatrix(240, 6, rng);   // head output grad
  const nn::Matrix wh = RandomMatrix(32, 6, rng);     // head weight
  nn::Matrix dw(256, 32);
  nn::Matrix dwh(32, 6);
  nn::Matrix dx;
  nn::Matrix dxh;
  for (auto _ : state) {
    x.MatMulTNInto(dy, dw, /*accumulate=*/true);
    dy.MatMulNTInto(w, dx);
    xh.MatMulTNInto(dyh, dwh, /*accumulate=*/true);
    dyh.MatMulNTInto(wh, dxh);
    benchmark::DoNotOptimize(dw.At(0, 0));
    benchmark::DoNotOptimize(dx.At(0, 0));
  }
}
BENCHMARK(BM_PensieveBackwardKernels)->Unit(benchmark::kMicrosecond);

/// The contiguous U_S decision scan as a function of support-vector count.
void BM_OcSvmDecision(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::vector<double>> features;
  for (std::size_t i = 0; i < n; ++i)
    features.push_back({rng.Normal(3.0, 0.5), rng.Normal(0.5, 0.1)});
  svm::OneClassSvm model;
  model.Fit(features);
  const std::vector<double> x = {3.0, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.DecisionValue(x));
  }
}
BENCHMARK(BM_OcSvmDecision)->Arg(200)->Arg(1000)->Arg(4000);

/// Multi-trace evaluation: BufferBased rollouts over 16 generated traces
/// (no training needed), serial EvaluatePolicy vs EvaluatePolicyParallel
/// with a worker budget of `range(0)` threads.
std::vector<traces::Trace> BenchTraces() {
  Rng rng(11);
  const auto gen = traces::MakeNorway3gGenerator();
  std::vector<traces::Trace> out;
  for (std::size_t i = 0; i < 16; ++i)
    out.push_back(gen->Generate(rng, 600.0, i));
  return out;
}

void BM_EvaluateMultiTraceSerial(benchmark::State& state) {
  const abr::VideoSpec video = abr::MakeEnvivioLikeVideo(5);
  abr::AbrEnvironment env(video, {});
  abr::AbrStateLayout layout;
  policies::BufferBasedPolicy policy(video, layout);
  const std::vector<traces::Trace> traces = BenchTraces();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EvaluatePolicy(policy, env, traces));
  }
}
BENCHMARK(BM_EvaluateMultiTraceSerial)->Unit(benchmark::kMillisecond);

void BM_EvaluateMultiTraceParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const abr::VideoSpec video = abr::MakeEnvivioLikeVideo(5);
  abr::AbrEnvironment env(video, {});
  abr::AbrStateLayout layout;
  const std::vector<traces::Trace> traces = BenchTraces();
  // A private pool of exactly the requested width. The shared pool sizes
  // itself to HardwareConcurrency() - 1, which is 0 workers on a
  // single-core runner - every Arg() then silently measured the same
  // serial fallback. Constructing the pool makes the benchmark measure
  // real contention/speedup at each width regardless of the host.
  util::ThreadPool pool(threads - 1);
  const util::ParallelOptions options{.max_workers = threads - 1, .chunk = 1};
  const auto make_policy = [&] {
    return std::make_shared<policies::BufferBasedPolicy>(video, layout);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::EvaluatePolicyParallel(make_policy, env, traces, pool, options));
  }
}
BENCHMARK(BM_EvaluateMultiTraceParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

OSAP_BENCHMARK_MAIN_WITH_JSON("BENCH_hot_paths.json")
