// Extension: OSAP over a different learned ABR system (paper Section 5:
// "extending our preliminary findings for ABR by considering other
// DL-based ABR systems (e.g., [61])").
//
// The learned system here is a supervised throughput-predictor ABR
// (CS2P [49] / Fugu [61] family) trained on Gamma(2,2); the safety net is
// the *same* fitted U_S OC-SVM that guards Pensieve in the main benches -
// demonstrating that the input-side signal is agent-agnostic: one novelty
// detector per training distribution serves every learned policy deployed
// on it.
#include <map>

#include "bench_common.h"
#include "policies/buffer_based.h"
#include "policies/predictive.h"

using namespace osap;
using core::Scheme;

namespace {

constexpr auto kTrain = traces::DatasetId::kGamma22;

}  // namespace

int main() {
  bench::PrintHeader("Extension: predictive ABR",
                     "the U_S net guarding a throughput-predictor policy");
  core::Workbench bench(bench::PaperConfig());
  const core::TrainedBundle& bundle = bench.BundleFor(kTrain);

  // Train the predictor on BB-driven sessions over the training split
  // (labels must not depend on the policy under training).
  std::printf("training the throughput predictor on %s...\n",
              traces::DatasetLabel(kTrain).c_str());
  abr::AbrEnvironment env = bench.MakeEvalEnvironment();
  policies::BufferBasedPolicy bb(bench.eval_video(), bench.layout());
  policies::PredictiveAbrConfig cfg;
  cfg.training.epochs = 30;
  cfg.training.learning_rate = 0.01;
  const rl::ValueDataset dataset = policies::ThroughputPredictor::CollectDataset(
      env, bb, bench.DatasetFor(kTrain).train);
  Rng rng(17);
  auto predictor = std::make_shared<policies::ThroughputPredictor>(
      bench.layout(), cfg, rng);
  const double loss = predictor->Train(dataset);
  std::printf("  %zu samples, final MSE %.4f\n", dataset.Size(), loss);

  auto predictive = std::make_shared<policies::PredictiveAbrPolicy>(
      predictor, bench.eval_video(), bench.layout(), cfg);

  // The safety net: Pensieve's own fitted ND model, reused verbatim.
  auto make_safe = [&] {
    auto estimator = std::make_shared<core::NoveltyDetector>(*bundle.novelty);
    estimator->Reset();
    core::SafeAgentConfig sa;
    sa.trigger.mode = core::TriggerMode::kBinary;
    sa.trigger.l = bench.config().trigger_l;
    return std::make_shared<core::SafeAgent>(
        predictive, bench.MakePolicy(Scheme::kBufferBased, kTrain),
        estimator, sa);
  };

  CsvWriter csv(bench::ResultsDir() / "ext_predictive_abr.csv");
  csv.WriteHeader({"test", "scheme", "mean_qoe", "normalized"});
  TablePrinter table({"test dataset", "predictive", "predictive+nd",
                      "buffer_based", "random", "pred. norm."});
  for (traces::DatasetId test : traces::AllDatasetIds()) {
    const auto& test_traces = bench.DatasetFor(test).test;
    std::map<std::string, double> qoe;
    qoe["predictive"] =
        core::EvaluatePolicy(*predictive, env, test_traces).MeanQoe();
    auto safe = make_safe();
    qoe["predictive+nd"] =
        core::EvaluatePolicy(*safe, env, test_traces).MeanQoe();
    qoe["buffer_based"] = bench.Evaluate(Scheme::kBufferBased, test, test).MeanQoe();
    qoe["random"] = bench.Evaluate(Scheme::kRandom, test, test).MeanQoe();
    const double norm = core::NormalizedScore(
        qoe["predictive"], qoe["random"], qoe["buffer_based"]);
    table.AddRow({traces::DatasetLabel(test) +
                      (test == kTrain ? " (in-dist)" : ""),
                  TablePrinter::Num(qoe["predictive"], 1),
                  TablePrinter::Num(qoe["predictive+nd"], 1),
                  TablePrinter::Num(qoe["buffer_based"], 1),
                  TablePrinter::Num(qoe["random"], 1),
                  TablePrinter::Num(norm, 2)});
    for (const auto& [scheme, value] : qoe) {
      csv.WriteRow({traces::DatasetName(test), scheme,
                    std::to_string(value),
                    std::to_string(core::NormalizedScore(
                        value, qoe["random"], qoe["buffer_based"]))});
    }
  }
  std::printf("\nMean session QoE (predictor trained on %s; safety net = "
              "the Pensieve bundle's OC-SVM, reused):\n\n",
              traces::DatasetLabel(kTrain).c_str());
  table.Print();
  std::printf("\nShape: like Pensieve, the predictor is strong "
              "in-distribution and unreliable under shift; the unmodified "
              "U_S net bounds its damage, showing input-side safety "
              "assurance is agent-agnostic.\n");
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "ext_predictive_abr.csv").c_str());
  return 0;
}
