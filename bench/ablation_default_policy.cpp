// Ablation: the choice of default ("safe") policy (paper Section 5 lists
// "considering ... other default policies" as future work).
//
// The paper defaults to Buffer-Based. We swap in the rate-based heuristic
// and throughput-MPC as alternative fallbacks under the ND safety net
// (trained on Gamma(2,2)) and report in-distribution QoE plus OOD
// min/mean normalized scores (still normalized against BB, the paper's
// scale anchor). MPC is the strongest standalone heuristic, so it should
// also make the strongest fallback.
#include <algorithm>
#include <limits>

#include "bench_common.h"
#include "policies/buffer_based.h"
#include "policies/mpc.h"
#include "policies/rate_based.h"

using namespace osap;
using core::Scheme;

namespace {

constexpr auto kTrain = traces::DatasetId::kGamma22;

double NormalizedOnTest(core::Workbench& bench, mdp::Policy& policy,
                        traces::DatasetId test) {
  auto env = bench.MakeEvalEnvironment();
  const double qoe =
      core::EvaluatePolicy(policy, env, bench.DatasetFor(test).test)
          .MeanQoe();
  const double random = bench.Evaluate(Scheme::kRandom, test, test).MeanQoe();
  const double bb =
      bench.Evaluate(Scheme::kBufferBased, test, test).MeanQoe();
  return core::NormalizedScore(qoe, random, bb);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: default policy",
                     "BB vs rate-based vs MPC as the safety fallback");
  core::Workbench bench(bench::PaperConfig());
  const core::TrainedBundle& bundle = bench.BundleFor(kTrain);
  auto eval_env = bench.MakeEvalEnvironment();
  const auto& validation = bench.DatasetFor(kTrain).validation;

  CsvWriter csv(bench::ResultsDir() / "ablation_default_policy.csv");
  csv.WriteHeader({"fallback", "in_dist_qoe", "ood_min_norm",
                   "ood_mean_norm"});
  TablePrinter table({"fallback", "in-dist QoE", "OOD min (norm)",
                      "OOD mean (norm)"});

  struct Fallback {
    std::string name;
    std::shared_ptr<mdp::Policy> policy;
  };
  std::vector<Fallback> fallbacks;
  fallbacks.push_back(
      {"buffer_based", std::make_shared<policies::BufferBasedPolicy>(
                           bench.eval_video(), bench.layout())});
  fallbacks.push_back(
      {"rate_based", std::make_shared<policies::RateBasedPolicy>(
                         bench.eval_video(), bench.layout())});
  fallbacks.push_back({"mpc", std::make_shared<policies::MpcPolicy>(
                                  bench.eval_video(), bench.layout())});

  for (const Fallback& fb : fallbacks) {
    auto estimator =
        std::make_shared<core::NoveltyDetector>(*bundle.novelty);
    estimator->Reset();
    core::SafeAgentConfig cfg;
    cfg.trigger.mode = core::TriggerMode::kBinary;
    cfg.trigger.l = bench.config().trigger_l;
    core::SafeAgent agent(bench.MakePolicy(Scheme::kPensieve, kTrain),
                          fb.policy, estimator, cfg);
    const double in_dist =
        core::EvaluatePolicy(agent, eval_env, validation).MeanQoe();
    double ood_min = std::numeric_limits<double>::infinity();
    double ood_sum = 0.0;
    std::size_t n = 0;
    for (traces::DatasetId test : traces::AllDatasetIds()) {
      if (test == kTrain) continue;
      const double score = NormalizedOnTest(bench, agent, test);
      ood_min = std::min(ood_min, score);
      ood_sum += score;
      ++n;
    }
    table.AddRow({fb.name, TablePrinter::Num(in_dist, 1),
                  TablePrinter::Num(ood_min, 2),
                  TablePrinter::Num(ood_sum / static_cast<double>(n), 2)});
    csv.WriteRow({fb.name, std::to_string(in_dist),
                  std::to_string(ood_min),
                  std::to_string(ood_sum / static_cast<double>(n))});
  }

  std::printf("\nND safety net trained on %s with different fallback "
              "policies (scores still normalized to BB = 1):\n\n",
              traces::DatasetLabel(kTrain).c_str());
  table.Print();
  std::printf("\nCSV written to %s\n",
              (bench::ResultsDir() / "ablation_default_policy.csv").c_str());
  return 0;
}
