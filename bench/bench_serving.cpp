// Serving-path throughput: sharded cross-session micro-batching vs the
// one-session-at-a-time loop.
//
// The workload is a fixed population of N concurrent viewers, each
// presenting one decision request per round (open-loop replay of recorded
// session states, so both arms do identical per-session work and the
// numbers isolate decision cost):
//   - BM_ServeSequential*: the naive deployment - N independent SafeAgent
//     instances, each owning a private estimator with its own packed
//     weight copy, polled one session at a time. Every round streams N
//     copies of identical weights through the cache hierarchy.
//   - BM_ServeService*: one shared ServingModel behind a sharded
//     DecisionService; a round is a single DecideBatch over all N
//     sessions (per shard: one fused ensemble pass / one OC-SVM scan over
//     the whole batch + one batched deployed-actor pass).
// Args are {sessions} for the sequential arm and {sessions, shards} for
// the service. decisions_per_s is a REAL-TIME rate (wall clock around the
// decision loop - the service arm is multi-threaded, so CPU-time rates
// would be meaningless); rates stay console-only while the sidecar gates
// the lower-is-better entries. The service arm additionally reports
// per-round latency percentiles (p50_us / p99_us).
//
// BM_ServeServiceMem* is the memory sweep: it opens {sessions} sessions
// against a {shards}-shard service, drives a few rounds so scratch
// materializes, and reports bytes_per_session (exact, from
// ServiceMemoryStats - the number the memory-diet gate pins), rss_mb
// (process RSS growth over the run) and peak_rss_mb. Run it alone with
// OSAP_BENCH_JSON=BENCH_serving_mem.json to produce the memory baseline.
//
// Uses the shared ./osap_cache artifacts (trains them on first run).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench_common.h"
#include "bench_json.h"
#include "core/ensemble_estimators.h"
#include "core/novelty_detector.h"
#include "net/client.h"
#include "net/server.h"
#include "core/safe_agent.h"
#include "policies/buffer_based.h"
#include "policies/pensieve_policy.h"
#include "serve/decision_service.h"
#include "serve/serving_model.h"
#include "util/memory_meter.h"

using namespace osap;

namespace {

core::Workbench& SharedBench() {
  static auto* bench = new core::Workbench(bench::PaperConfig());
  return *bench;
}

constexpr auto kTrain = traces::DatasetId::kGamma22;

/// Recorded decision states: greedy-agent sessions over in-distribution
/// (gamma) and out-of-distribution (exponential) test traces. Viewer i
/// replays the pool from offset i * 17, so concurrent sessions are spread
/// across session phases and distributions.
const std::vector<mdp::State>& StatePool() {
  static const std::vector<mdp::State>* pool = [] {
    auto* out = new std::vector<mdp::State>();
    core::Workbench& bench = SharedBench();
    auto policy = bench.MakePolicy(core::Scheme::kPensieve, kTrain);
    for (const auto test :
         {traces::DatasetId::kGamma22, traces::DatasetId::kExponential}) {
      const auto& traces = bench.DatasetFor(test).test;
      for (std::size_t t = 0; t < 2 && t < traces.size(); ++t) {
        auto env = bench.MakeEvalEnvironment();
        env.SetFixedTrace(traces[t]);
        mdp::State s = env.Reset();
        bool done = false;
        while (!done) {
          out->push_back(s);
          mdp::StepResult r = env.Step(policy->SelectAction(s));
          s = std::move(r.next_state);
          done = r.done;
        }
      }
    }
    return out;
  }();
  return *pool;
}

const mdp::State& PooledState(std::size_t session, std::size_t round) {
  const auto& pool = StatePool();
  return pool[(session * 17 + round) % pool.size()];
}

/// The deployed trigger configuration for a safety scheme (the mapping
/// Workbench::TriggerFor applies, with the bundle's calibrated alphas).
core::SafeAgentConfig TriggerFor(core::Scheme scheme) {
  const auto& bundle = SharedBench().BundleFor(kTrain);
  core::SafeAgentConfig cfg;
  cfg.trigger.l = SharedBench().config().trigger_l;
  cfg.trigger.k = SharedBench().config().trigger_k;
  switch (scheme) {
    case core::Scheme::kNoveltyDetection:
      cfg.trigger.mode = core::TriggerMode::kBinary;
      break;
    case core::Scheme::kAgentEnsemble:
      cfg.trigger.mode = core::TriggerMode::kWindowVariance;
      cfg.trigger.alpha = bundle.alpha_pi;
      break;
    default:
      cfg.trigger.mode = core::TriggerMode::kWindowVariance;
      cfg.trigger.alpha = bundle.alpha_v;
      break;
  }
  return cfg;
}

/// A private estimator instance - its own packed weight / support-vector
/// copy, exactly what each per-session SafeAgent owns in the naive
/// deployment.
std::shared_ptr<core::UncertaintyEstimator> PrivateEstimator(
    core::Scheme scheme) {
  const auto& bundle = SharedBench().BundleFor(kTrain);
  const std::size_t discard = SharedBench().config().ensemble_discard;
  switch (scheme) {
    case core::Scheme::kNoveltyDetection: {
      auto detector = std::make_shared<core::NoveltyDetector>(*bundle.novelty);
      detector->Reset();
      return detector;
    }
    case core::Scheme::kAgentEnsemble:
      return std::make_shared<core::AgentEnsembleEstimator>(bundle.agents,
                                                            discard);
    default:
      return std::make_shared<core::ValueEnsembleEstimator>(bundle.value_nets,
                                                            discard);
  }
}

std::shared_ptr<const serve::ServingModel> SharedModel(core::Scheme scheme) {
  core::Workbench& bench = SharedBench();
  const auto& bundle = bench.BundleFor(kTrain);
  const std::size_t discard = bench.config().ensemble_discard;
  const core::SafeAgentConfig safety = TriggerFor(scheme);
  switch (scheme) {
    case core::Scheme::kNoveltyDetection:
      return serve::ServingModel::Novelty(bundle.agents, bundle.novelty,
                                          bench.eval_video(), bench.layout(),
                                          safety);
    case core::Scheme::kAgentEnsemble:
      return serve::ServingModel::AgentEnsemble(bundle.agents, discard,
                                                bench.eval_video(),
                                                bench.layout(), safety);
    default:
      return serve::ServingModel::ValueEnsemble(
          bundle.agents, bundle.value_nets, discard, bench.eval_video(),
          bench.layout(), safety);
  }
}

/// One-session-at-a-time baseline: N private SafeAgents polled in a loop.
void RunSequential(benchmark::State& state, core::Scheme scheme) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Workbench& bench = SharedBench();
  const auto& bundle = bench.BundleFor(kTrain);
  const core::SafeAgentConfig cfg = TriggerFor(scheme);
  std::vector<std::unique_ptr<core::SafeAgent>> agents;
  agents.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    agents.push_back(std::make_unique<core::SafeAgent>(
        std::make_shared<policies::PensievePolicy>(
            bundle.agents.front(), policies::ActionSelection::kGreedy, 0),
        std::make_shared<policies::BufferBasedPolicy>(bench.eval_video(),
                                                      bench.layout()),
        PrivateEstimator(scheme), cfg));
  }
  StatePool();  // materialize outside the timed region
  std::size_t round = 0;
  double wall_seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(agents[i]->SelectAction(PooledState(i, round)));
    }
    wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    ++round;
  }
  if (wall_seconds > 0.0) {
    state.counters["decisions_per_s"] =
        static_cast<double>(state.iterations()) * static_cast<double>(n) /
        wall_seconds;
  }
}

/// Sharded service: one DecideBatch over all N sessions per round.
void RunService(benchmark::State& state, core::Scheme scheme) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  serve::DecisionServiceConfig cfg;
  cfg.shard_count = shards;
  serve::DecisionService service(SharedModel(scheme), cfg);
  std::vector<serve::DecisionService::SessionId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = service.OpenSession();
  std::vector<serve::DecisionService::Request> requests(n);
  std::vector<mdp::Action> actions(n);
  StatePool();  // materialize outside the timed region
  // One untimed warmup round: the first DecideBatch grows the shard
  // scratch (arenas, packed-state matrices) and would otherwise dominate
  // the p99 counter in short smoke runs.
  for (std::size_t i = 0; i < n; ++i) {
    requests[i] = {ids[i], &PooledState(i, 0)};
  }
  service.DecideBatch(requests, actions);
  std::vector<double> round_us;
  std::size_t round = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      requests[i] = {ids[i], &PooledState(i, round)};
    }
    const auto start = std::chrono::steady_clock::now();
    service.DecideBatch(requests, actions);
    const auto stop = std::chrono::steady_clock::now();
    round_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
    benchmark::DoNotOptimize(actions.data());
    ++round;
  }
  std::sort(round_us.begin(), round_us.end());
  if (!round_us.empty()) {
    state.counters["p50_us"] = round_us[round_us.size() / 2];
    state.counters["p99_us"] = round_us[round_us.size() * 99 / 100];
    double wall_us = 0.0;
    for (double us : round_us) wall_us += us;
    state.counters["decisions_per_s"] =
        static_cast<double>(round_us.size()) * static_cast<double>(n) /
        (wall_us * 1e-6);
  }
}

/// Memory sweep: bytes/session at scale. One iteration builds a service,
/// opens N sessions, runs a few rounds (so extractor slabs, trigger rings
/// and shard scratch all materialize) and reports the exact per-session
/// accounting plus the kernel's view of the process.
void RunServiceMem(benchmark::State& state, core::Scheme scheme) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const auto model = SharedModel(scheme);
  StatePool();
  for (auto _ : state) {
#if defined(__GLIBC__)
    // Return freed heap to the kernel first: without this the RSS delta
    // depends on what earlier benchmarks left in the allocator (a run
    // reusing a predecessor's freed pages reports ~0), which would make
    // the committed rss_mb baseline order-dependent.
    malloc_trim(0);
#endif
    const std::size_t rss_before = util::CurrentRssBytes();
    serve::DecisionServiceConfig cfg;
    cfg.shard_count = shards;
    serve::DecisionService service(model, cfg);
    std::vector<serve::DecisionService::SessionId> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = service.OpenSession();
    std::vector<serve::DecisionService::Request> requests(n);
    std::vector<mdp::Action> actions(n);
    for (std::size_t round = 0; round < 2; ++round) {
      for (std::size_t i = 0; i < n; ++i) {
        requests[i] = {ids[i], &PooledState(i, round)};
      }
      service.DecideBatch(requests, actions);
    }
    const serve::ServiceMemoryStats stats = service.MemoryStats();
    const std::size_t rss_after = util::CurrentRssBytes();
    state.counters["bytes_per_session"] = stats.BytesPerSession();
    state.counters["scratch_mb"] =
        static_cast<double>(stats.scratch_bytes) / 1e6;
    state.counters["rss_mb"] =
        rss_after > rss_before
            ? static_cast<double>(rss_after - rss_before) / 1e6
            : 0.0;
    state.counters["peak_rss_mb"] =
        static_cast<double>(util::PeakRssBytes()) / 1e6;
  }
}

/// Network-edge arm: the same {sessions, shards} round as RunService, but
/// over real loopback TCP through the epoll NetServer - one pipelined
/// STEP per session, one flush, read every reply. A round's wall clock
/// therefore includes frame encoding, both kernel socket stacks, the
/// server's parse/admit/batch/flush cycle and the reply decode, so the
/// delta against BM_ServeService is the cost of the wire. decisions_per_s
/// stays console-only (rate); the gated sidecar entries are the
/// round-trip percentiles.
///
/// The third arg is edge_threads: with E > 1 SO_REUSEPORT edges the
/// round fans out over E client threads, one connection pinned per edge
/// (connections are probed until every edge's listener holds one -
/// session ids are edge-affine, so id % shards reveals where a
/// connection landed), and the round's wall clock is the slowest edge's
/// send-flush-collect. Sweeping /{1,2,4,8} edges at fixed shards is the
/// tentpole scaling curve.
void RunNetServe(benchmark::State& state, core::Scheme scheme,
                 net::BackendKind backend) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const auto edges = static_cast<std::size_t>(state.range(2));
  if (backend == net::BackendKind::kUring &&
      !net::UringBackendAvailable()) {
    // Visible skip, and error_occurred keeps the point out of the JSON
    // sidecar - the gate diffs only the arms this kernel can run.
    state.SkipWithError(
        (std::string("io_uring unavailable: ") +
         net::UringUnavailableReason())
            .c_str());
    return;
  }
  net::NetServerConfig cfg;
  cfg.service.shard_count = shards;
  cfg.edge_threads = edges;
  cfg.backend = backend;
  net::NetServer server(SharedModel(scheme), cfg);
  server.Start();
  std::thread loop([&server] { server.Run(); });

  // Submitter-group arithmetic (mirrors DecisionService::GroupOfShard):
  // which edge owns a session's shard.
  const std::size_t base = shards / edges;
  const std::size_t rem = shards % edges;
  const auto edge_of = [&](std::uint64_t session) {
    const std::size_t shard = static_cast<std::size_t>(session) % shards;
    if (shard < rem * (base + 1)) return shard / (base + 1);
    return rem + (shard - rem * (base + 1)) / base;
  };

  // One connection per edge: the kernel hashes connections across the
  // SO_REUSEPORT listeners by 4-tuple, so probe (open a session, read
  // its edge, close it) until every edge holds exactly one connection.
  std::vector<std::unique_ptr<net::Client>> clients(edges);
  std::size_t covered = 0, attempts = 0;
  while (covered < edges) {
    OSAP_CHECK_MSG(++attempts < 4096, "BM_NetServe: edge probing stuck");
    auto c = std::make_unique<net::Client>();
    c->Connect("127.0.0.1", server.Port());
    const std::uint64_t probe = c->OpenSession();
    const std::size_t e = edge_of(probe);
    c->CloseSession(probe);
    if (clients[e] == nullptr) {
      clients[e] = std::move(c);
      ++covered;
    } else {
      c->Close();
    }
  }

  // Edge e owns sessions [offset, offset + count) of the population.
  std::vector<std::vector<std::uint64_t>> sessions(edges);
  std::vector<std::size_t> offset(edges);
  std::size_t next_offset = 0;
  for (std::size_t e = 0; e < edges; ++e) {
    const std::size_t count = n / edges + (e < n % edges ? 1 : 0);
    offset[e] = next_offset;
    next_offset += count;
    sessions[e].reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      sessions[e].push_back(clients[e]->OpenSession());
    }
  }
  StatePool();  // materialize outside the timed region

  // Persistent per-edge workers, two barrier phases per round: arrive
  // (round starts), run the edge's pipelined send-flush-collect, arrive
  // (round done). The timed region spans both phases, so a round costs
  // what the SLOWEST edge costs - exactly the fan-out being measured.
  std::barrier sync(static_cast<std::ptrdiff_t>(edges) + 1);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> ok_total{0};
  std::atomic<std::size_t> round{0};
  std::vector<std::thread> workers;
  workers.reserve(edges);
  for (std::size_t e = 0; e < edges; ++e) {
    workers.emplace_back([&, e] {
      net::Client& client = *clients[e];
      std::uint64_t rid = static_cast<std::uint64_t>(e + 1) << 20;
      net::Reply reply;
      while (true) {
        sync.arrive_and_wait();
        if (done.load(std::memory_order_acquire)) return;
        const std::size_t r = round.load(std::memory_order_relaxed);
        std::size_t ok = 0;
        for (std::size_t i = 0; i < sessions[e].size(); ++i) {
          client.SendStep(++rid, sessions[e][i],
                          PooledState(offset[e] + i, r));
        }
        client.Flush();
        for (std::size_t i = 0; i < sessions[e].size(); ++i) {
          if (client.ReadReply(reply) && reply.status == net::Status::kOk) {
            ++ok;
          }
        }
        ok_total.fetch_add(ok, std::memory_order_relaxed);
        sync.arrive_and_wait();
      }
    });
  }

  const auto run_round = [&] {
    ok_total.store(0, std::memory_order_relaxed);
    sync.arrive_and_wait();  // release the edges into the round
    sync.arrive_and_wait();  // every edge collected its replies
    OSAP_CHECK_MSG(ok_total.load(std::memory_order_relaxed) == n,
                   "BM_NetServe: lost or rejected replies");
    round.fetch_add(1, std::memory_order_relaxed);
  };
  run_round();  // one untimed warmup round (scratch growth, see RunService)

  std::vector<double> round_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    run_round();
    const auto stop = std::chrono::steady_clock::now();
    round_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }

  done.store(true, std::memory_order_release);
  sync.arrive_and_wait();  // release the workers into the exit check
  for (std::thread& w : workers) w.join();
  for (auto& c : clients) c->Close();
  server.Stop();
  loop.join();
  // The backend comparison's second axis next to round latency: kernel
  // crossings per decision (batched SQEs are the uring arm's whole
  // claim). Counted over the entire run including warmup/probe rounds -
  // the ratio, not the absolute count, is the comparable number.
  const net::ServerStats net_stats = server.Stats();
  if (net_stats.decided > 0) {
    state.counters["syscalls_per_decision"] =
        static_cast<double>(server.IoSyscalls()) /
        static_cast<double>(net_stats.decided);
  }
  std::sort(round_us.begin(), round_us.end());
  if (!round_us.empty()) {
    state.counters["p50_us"] = round_us[round_us.size() / 2];
    state.counters["p99_us"] = round_us[round_us.size() * 99 / 100];
    double wall_us = 0.0;
    for (double us : round_us) wall_us += us;
    state.counters["decisions_per_s"] =
        static_cast<double>(round_us.size()) * static_cast<double>(n) /
        (wall_us * 1e-6);
  }
}

void BM_ServeSequentialUs(benchmark::State& state) {
  RunSequential(state, core::Scheme::kNoveltyDetection);
}
void BM_ServeSequentialUpi(benchmark::State& state) {
  RunSequential(state, core::Scheme::kAgentEnsemble);
}
void BM_ServeSequentialUv(benchmark::State& state) {
  RunSequential(state, core::Scheme::kValueEnsemble);
}
void BM_ServeServiceUs(benchmark::State& state) {
  RunService(state, core::Scheme::kNoveltyDetection);
}
void BM_ServeServiceUpi(benchmark::State& state) {
  RunService(state, core::Scheme::kAgentEnsemble);
}
void BM_ServeServiceUv(benchmark::State& state) {
  RunService(state, core::Scheme::kValueEnsemble);
}
void BM_NetServeUs(benchmark::State& state, net::BackendKind backend) {
  RunNetServe(state, core::Scheme::kNoveltyDetection, backend);
}
void BM_NetServeUpi(benchmark::State& state, net::BackendKind backend) {
  RunNetServe(state, core::Scheme::kAgentEnsemble, backend);
}
void BM_NetServeUv(benchmark::State& state, net::BackendKind backend) {
  RunNetServe(state, core::Scheme::kValueEnsemble, backend);
}
void BM_ServeServiceMemUs(benchmark::State& state) {
  RunServiceMem(state, core::Scheme::kNoveltyDetection);
}
void BM_ServeServiceMemUpi(benchmark::State& state) {
  RunServiceMem(state, core::Scheme::kAgentEnsemble);
}
void BM_ServeServiceMemUv(benchmark::State& state) {
  RunServiceMem(state, core::Scheme::kValueEnsemble);
}

BENCHMARK(BM_ServeSequentialUs)
    ->Arg(64)->Arg(256)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeSequentialUpi)
    ->Arg(64)->Arg(256)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeSequentialUv)
    ->Arg(64)->Arg(256)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeServiceUs)
    ->Args({64, 1})->Args({256, 1})->Args({1000, 1})->Args({1000, 4})
    ->Args({1000, 8})->Args({1000, 16})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeServiceUpi)
    ->Args({64, 1})->Args({256, 1})->Args({1000, 1})->Args({1000, 4})
    ->Args({1000, 8})->Args({1000, 16})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeServiceUv)
    ->Args({64, 1})->Args({256, 1})->Args({1000, 1})->Args({1000, 4})
    ->Args({1000, 8})->Args({1000, 16})
    ->Unit(benchmark::kMillisecond);
// Network-edge arm, named BM_NetServe*/{epoll,uring}/{sessions}/{shards}/
// {edge_threads}. The single-edge points measure per-round wire overhead
// vs BM_ServeService; the Us /{1,2,4,8}-edge sweep at fixed shards is
// the multi-core edge scaling curve (Us is the cheapest signal, so the
// wire/edge share of a round is largest and the sweep isolates edge
// parallelism rather than model cost - upi/uv ride the identical code
// path). The uring arm mirrors the epoll grid point for point and skips
// itself (with the reason on the console, excluded from the sidecar)
// when the kernel denies io_uring; diff the two arms with
// tools/bench_diff.py --only-backend. Open-loop connection fan-in lives
// in tools/osap_client against a live server.
BENCHMARK_CAPTURE(BM_NetServeUs, epoll, net::BackendKind::kEpoll)
    ->Args({64, 1, 1})->Args({256, 1, 1})->Args({1000, 1, 1})
    ->Args({1000, 8, 1})
    ->Args({256, 8, 1})->Args({256, 8, 2})->Args({256, 8, 4})
    ->Args({256, 8, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NetServeUs, uring, net::BackendKind::kUring)
    ->Args({64, 1, 1})->Args({256, 1, 1})->Args({1000, 1, 1})
    ->Args({1000, 8, 1})
    ->Args({256, 8, 1})->Args({256, 8, 2})->Args({256, 8, 4})
    ->Args({256, 8, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NetServeUpi, epoll, net::BackendKind::kEpoll)
    ->Args({64, 1, 1})->Args({256, 1, 1})->Args({1000, 1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NetServeUpi, uring, net::BackendKind::kUring)
    ->Args({64, 1, 1})->Args({256, 1, 1})->Args({1000, 1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NetServeUv, epoll, net::BackendKind::kEpoll)
    ->Args({64, 1, 1})->Args({256, 1, 1})->Args({1000, 1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NetServeUv, uring, net::BackendKind::kUring)
    ->Args({64, 1, 1})->Args({256, 1, 1})->Args({1000, 1, 1})
    ->Unit(benchmark::kMillisecond);
// The 100k memory sweep: one deterministic iteration per point (the
// accounting does not jitter; timing is not what this measures).
BENCHMARK(BM_ServeServiceMemUs)
    ->Args({10000, 8})->Args({100000, 8})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeServiceMemUpi)
    ->Args({10000, 8})->Args({100000, 8})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServeServiceMemUv)
    ->Args({10000, 8})->Args({100000, 8})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

OSAP_BENCHMARK_MAIN_WITH_JSON("BENCH_serving.json")
