// Substrate micro-benchmarks: throughput of the building blocks the
// reproduction rests on (ABR simulator steps, network forward/backward,
// OC-SVM decisions as a function of support-vector count, trace
// generation). These quantify the simulator-vs-testbed substitution cost
// documented in DESIGN.md section 2 and guard against performance
// regressions in the hot loops.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "abr/abr_environment.h"
#include "nn/losses.h"
#include "policies/pensieve_net.h"
#include "svm/ocsvm.h"
#include "traces/generators.h"

using namespace osap;

namespace {

void BM_SimulatorDownloadChunk(benchmark::State& state) {
  const abr::VideoSpec video = abr::MakeEnvivioLikeVideo(5);
  abr::AbrSimulator sim(video, {});
  const traces::Trace trace("flat", 1.0, std::vector<double>(600, 3.0));
  sim.StartSession(trace);
  std::size_t level = 0;
  for (auto _ : state) {
    if (sim.ChunksRemaining() == 0) sim.StartSession(trace);
    benchmark::DoNotOptimize(sim.DownloadChunk(level));
    level = (level + 1) % video.LevelCount();
  }
}
BENCHMARK(BM_SimulatorDownloadChunk);

void BM_EnvironmentStep(benchmark::State& state) {
  abr::AbrEnvironment env(abr::MakeEnvivioLikeVideo(5), {});
  const traces::Trace trace("flat", 1.0, std::vector<double>(600, 3.0));
  env.SetFixedTrace(trace);
  env.Reset();
  int action = 0;
  std::size_t steps = 0;
  for (auto _ : state) {
    if (steps % 240 == 0) env.Reset();
    benchmark::DoNotOptimize(env.Step(action));
    action = (action + 1) % 6;
    ++steps;
  }
}
BENCHMARK(BM_EnvironmentStep);

void BM_PensieveForwardSingle(benchmark::State& state) {
  Rng rng(1);
  abr::AbrStateLayout layout;
  auto net = policies::BuildPensieveNet(layout, 6, {}, rng);
  const nn::Matrix x(1, layout.Size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(x));
  }
}
BENCHMARK(BM_PensieveForwardSingle)->Unit(benchmark::kMicrosecond);

void BM_PensieveForwardBackwardBatch(benchmark::State& state) {
  Rng rng(1);
  abr::AbrStateLayout layout;
  auto net = policies::BuildPensieveNet(layout, 6, {}, rng);
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  nn::Matrix x(batch_size, layout.Size());
  for (double& v : x.values()) v = rng.Uniform(0.0, 1.0);
  nn::Matrix target(batch_size, 6);
  for (auto _ : state) {
    const nn::Matrix y = net.Forward(x);
    const nn::LossResult loss = nn::MseLoss(y, target);
    benchmark::DoNotOptimize(net.Backward(loss.grad));
    nn::ZeroGrads(net.Params());
  }
}
BENCHMARK(BM_PensieveForwardBackwardBatch)
    ->Arg(1)
    ->Arg(48)
    ->Arg(240)
    ->Unit(benchmark::kMicrosecond);

void BM_OcSvmDecision(benchmark::State& state) {
  // Fit on n samples (the support-vector count scales with n and nu).
  Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> train;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> f;
    for (int d = 0; d < 10; ++d) f.push_back(rng.Normal(3.0, 0.5));
    train.push_back(std::move(f));
  }
  svm::OneClassSvm model;
  model.Fit(train);
  state.SetLabel("SVs=" + std::to_string(model.SupportVectorCount()));
  std::vector<double> probe(10, 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.DecisionValue(probe));
  }
}
BENCHMARK(BM_OcSvmDecision)
    ->Arg(200)
    ->Arg(1000)
    ->Arg(3000)
    ->Unit(benchmark::kMicrosecond);

void BM_TraceGenerationIid(benchmark::State& state) {
  traces::IidTraceGenerator gen(
      std::make_shared<GammaDistribution>(2.0, 2.0));
  Rng rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Generate(rng, 320.0, i++));
  }
}
BENCHMARK(BM_TraceGenerationIid);

void BM_TraceGenerationMarkov(benchmark::State& state) {
  const auto gen = traces::MakeNorway3gGenerator();
  Rng rng(4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen->Generate(rng, 320.0, i++));
  }
}
BENCHMARK(BM_TraceGenerationMarkov);

}  // namespace

OSAP_BENCHMARK_MAIN_WITH_JSON("BENCH_substrates.json")
