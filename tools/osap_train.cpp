// osap_train: train a Pensieve actor-critic from the command line and save
// the weights for later evaluation with osap_eval.
//
// Usage:
//   osap_train <dataset> <out.bin> [episodes] [seed] [rollouts_per_update]
//
// Trains on the dataset's training split (full-length 240-chunk sessions)
// and reports progress every 10% of episodes. The weight file is the
// library's OSAPNN01 format (nn/serialize.h).
//
// With --calibrate the tool follows training with the deploy pipeline's
// threshold-calibration step: it trains/loads the Workbench bundle for
// the dataset (shared ./osap_cache artifacts, exactly like osap_serve)
// and prints the calibrated alpha_pi / alpha_v next to the ND target.
// --conformal switches that step from the bisection sweep to
// conformal-batch order statistics (DESIGN.md §11; implies --calibrate).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/evaluation.h"
#include "core/workbench.h"
#include "nn/serialize.h"
#include "policies/buffer_based.h"
#include "policies/pensieve_net.h"
#include "policies/pensieve_policy.h"
#include "rl/a2c.h"
#include "traces/dataset.h"
#include "util/arg_parser.h"

using namespace osap;

namespace {

traces::DatasetId ParseDataset(const std::string& name) {
  for (traces::DatasetId id : traces::AllDatasetIds()) {
    if (traces::DatasetName(id) == name) return id;
  }
  std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset;
  std::string out_path;
  std::size_t episodes = 2000;
  std::size_t seed = 1;
  // > 1 switches onto the batched-update parallel trainer (episodes within
  // an update are collected concurrently on the shared pool).
  std::size_t rollouts_per_update = 1;
  bool calibrate = false;
  bool conformal = false;
  double conformal_miscoverage = -1.0;  // < 0 derives from the ND rate
  std::size_t conformal_radius = 1;

  util::ArgParser parser("osap_train",
                         "Train a Pensieve actor-critic on a dataset's "
                         "training split and save the weights (OSAPNN01).");
  parser.AddPositional("dataset", "training dataset (see `osap_traces list`)",
                       &dataset);
  parser.AddPositional("out.bin", "weight file to write", &out_path);
  parser.AddOptionalPositional("episodes", "training episodes (default 2000)",
                               &episodes);
  parser.AddOptionalPositional("seed", "RNG seed (default 1)", &seed);
  parser.AddOptionalPositional(
      "rollouts_per_update",
      "episodes collected in parallel per update (default 1 = serial)",
      &rollouts_per_update);
  parser.AddFlag("--calibrate",
                 "after training, run the deploy pipeline's threshold "
                 "calibration for the dataset (Workbench bundle via the "
                 "shared ./osap_cache) and print alpha_pi / alpha_v",
                 &calibrate);
  parser.AddFlag("--conformal",
                 "calibrate thresholds with conformal-batch order "
                 "statistics instead of the bisection sweep (implies "
                 "--calibrate; DESIGN.md §11)",
                 &conformal);
  parser.AddOption("--conformal-miscoverage", "EPS",
                   "conformal: target miscoverage (default: derive from "
                   "the ND trigger rate)",
                   &conformal_miscoverage);
  parser.AddOption("--conformal-radius", "N",
                   "conformal: rank-refinement radius around the conformal "
                   "order statistic (default 1; 0 = no QoE probes)",
                   &conformal_radius);
  if (!parser.Parse(argc, argv)) parser.ExitWithError();
  if (parser.HelpRequested()) parser.ExitWithHelp();
  if (conformal) calibrate = true;
  if (conformal_miscoverage >= 1.0) {
    std::fprintf(stderr,
                 "osap_train: --conformal-miscoverage must be < 1 "
                 "(negative derives it from the ND trigger rate)\n");
    return 2;
  }

  const traces::DatasetId id = ParseDataset(dataset);
  const std::filesystem::path out = out_path;
  if (episodes == 0) episodes = 1;
  if (rollouts_per_update == 0) rollouts_per_update = 1;

  const traces::Dataset ds = traces::BuildDataset(id);
  abr::AbrEnvironmentConfig env_cfg;
  abr::AbrEnvironment env(abr::MakeEnvivioLikeVideo(5), env_cfg);
  env.SetTracePool(ds.train, seed ^ 0x5EED);

  Rng init_rng(seed);
  auto net = std::make_shared<nn::ActorCriticNet>(
      policies::MakePensieveActorCritic(env_cfg.layout, {}, init_rng));

  std::printf("training on %s: %zu episodes, seed %llu\n",
              traces::DatasetLabel(id).c_str(), episodes,
              static_cast<unsigned long long>(seed));
  // Train in 10 slices so we can narrate progress without a callback API.
  rl::A2cConfig cfg;
  cfg.seed = seed ^ 0xAC70;
  const std::size_t slices = 10;
  for (std::size_t s = 0; s < slices; ++s) {
    cfg.episodes = std::max<std::size_t>(1, episodes / slices);
    // Anneal entropy across the whole run, not per slice.
    const double t0 = static_cast<double>(s) / slices;
    const double t1 = static_cast<double>(s + 1) / slices;
    rl::A2cConfig slice = cfg;
    slice.entropy_coef_start = 1.0 + t0 * (0.01 - 1.0);
    slice.entropy_coef_end = 1.0 + t1 * (0.01 - 1.0);
    slice.seed = cfg.seed + s;
    rl::TrainingHistory h;
    if (rollouts_per_update > 1) {
      slice.rollouts_per_update = rollouts_per_update;
      // Each episode rolls out on its own environment copy advanced to its
      // global position in the trace-pool stream (the serial trainer
      // consumes the pool one Reset per episode).
      const std::size_t slice_base = s * slice.episodes;
      const rl::EpisodeEnvFactory env_for_episode =
          [&env, slice_base](std::size_t e) {
            auto copy = std::make_unique<abr::AbrEnvironment>(env);
            copy->SkipPoolEpisodes(slice_base + e);
            return std::unique_ptr<mdp::Environment>(std::move(copy));
          };
      const rl::ActorCriticCloneFactory clone_net = [&env_cfg]() {
        Rng scratch(0);
        return policies::MakePensieveActorCritic(env_cfg.layout, {}, scratch);
      };
      h = rl::TrainA2cParallel(*net, clone_net, env_for_episode, slice,
                               util::ThreadPool::Shared());
    } else {
      h = rl::TrainA2c(*net, env, slice);
    }
    std::printf("  %3zu%%  recent mean reward %8.2f\n", (s + 1) * 10,
                h.RecentMeanReward(20));
  }

  nn::SaveParamsToFile(out, net->AllParams());
  std::printf("saved weights to %s\n", out.c_str());

  // Quick in-distribution sanity check against BB on the test split.
  policies::PensievePolicy greedy(net, policies::ActionSelection::kGreedy,
                                  0);
  policies::BufferBasedPolicy bb(env.video(), env_cfg.layout);
  abr::AbrEnvironment eval_env(abr::MakeEnvivioLikeVideo(5), env_cfg);
  const double p = core::EvaluatePolicy(greedy, eval_env, ds.test).MeanQoe();
  const double b = core::EvaluatePolicy(bb, eval_env, ds.test).MeanQoe();
  std::printf("test-split QoE: pensieve %.1f vs buffer_based %.1f (%s)\n",
              p, b, p >= b ? "pensieve wins" : "BB wins");

  if (calibrate) {
    // The deploy pipeline's threshold step: train/load the Workbench
    // bundle for this dataset (ensemble + detectors + calibrated alphas)
    // from the shared cache, exactly as osap_serve would before serving.
    core::WorkbenchConfig bench_cfg;
    bench_cfg.use_cache = true;
    bench_cfg.cache_dir = "osap_cache";
    bench_cfg.conformal_calibration = conformal;
    bench_cfg.conformal_miscoverage = conformal_miscoverage;
    bench_cfg.conformal_refine_radius = conformal_radius;
    core::Workbench bench(bench_cfg);
    const core::TrainedBundle& bundle = bench.BundleFor(id);
    std::printf("calibrated thresholds (%s) for %s:\n",
                conformal ? "conformal-batch" : "bisection sweep",
                traces::DatasetLabel(id).c_str());
    std::printf("  ND target QoE %.2f  alpha_pi %.6g  alpha_v %.6g\n",
                bundle.nd_in_dist_qoe, bundle.alpha_pi, bundle.alpha_v);
  }
  return 0;
}
