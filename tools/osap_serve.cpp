// osap_serve: load generator for the sharded decision service.
//
// Replays the six datasets' held-out test traces as N interleaved
// concurrent viewers: viewer i streams dataset i % 6, so every round mixes
// in-distribution (gamma_2_2-trained deployment) and out-of-distribution
// sessions. Each round every live viewer presents its current ABR state in
// ONE DecideBatch call; the returned action drives that viewer's
// environment forward. Finished viewers close their session and reopen on
// the dataset's next test trace (exercising slot recycling), so the
// population stays at N for the whole run.
//
// Usage:
//   osap_serve <us|upi|uv> [sessions] [rounds] [shards]
//              [--sessions N] [--rounds N] [--shards N]
//              [--open-loop RATE] [--revocable]
//   osap_serve <us|upi|uv> --listen PORT [--shards N] [--edge-threads N]
//              [--backend epoll|uring] [--revocable] [--max-in-flight N]
//              [--lane-high-water N] [--max-sessions N]
//
// Defaults: 1000 sessions, 2000 rounds, 4 shards, permanent defaulting,
// closed-loop (rounds issue back to back). With --open-loop RATE the tool
// instead schedules round r at t0 + r * sessions/RATE (an aggregate
// arrival rate of RATE decisions/s) and measures each round's latency
// from its SCHEDULED start, so a service that falls behind accrues
// queueing delay instead of silently slowing the arrival process down
// (no coordinated omission). Uses the shared ./osap_cache artifacts
// (trains them on first run - run from the repo root or a directory with
// an osap_cache symlink).
//
// With --listen PORT the tool is instead the network-edge server
// (DESIGN.md §10): it binds the port (0 picks an ephemeral one, printed
// on stdout), serves the binary protocol until SIGINT/SIGTERM, then
// prints the edge counters and the process RSS. --edge-threads N runs N
// independent SO_REUSEPORT event loops, each owning a contiguous group
// of the service's shards (requires shards >= N). Drive it with
// tools/osap_client.
//
// Reports aggregate decisions/sec, round latency percentiles
// (p50/p99/p999), the service's exact per-session byte accounting, the
// process RSS now and at its peak, and a per-dataset table of completed
// sessions, defaulted share, and mean QoE - the OOD rows defaulting while
// the ID rows stay learned is the paper's safety story showing up under
// serving load.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "abr/abr_environment.h"
#include "core/workbench.h"
#include "net/server.h"
#include "serve/decision_service.h"
#include "serve/serving_model.h"
#include "traces/dataset.h"
#include "util/arg_parser.h"
#include "util/memory_meter.h"

using namespace osap;

namespace {

core::Scheme ParseSignal(const std::string& name, util::ArgParser& parser) {
  if (name == "us") return core::Scheme::kNoveltyDetection;
  if (name == "upi") return core::Scheme::kAgentEnsemble;
  if (name == "uv") return core::Scheme::kValueEnsemble;
  std::fprintf(stderr, "osap_serve: unknown signal '%s'\n%s\n", name.c_str(),
               parser.UsageLine().c_str());
  std::exit(2);
}

// SIGINT/SIGTERM -> Stop() (an atomic store plus one eventfd write, both
// async-signal-safe).
net::NetServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();
}

/// The deployed trigger configuration for a scheme (the Workbench mapping
/// with the bundle's calibrated alphas).
core::SafeAgentConfig TriggerFor(core::Workbench& bench, core::Scheme scheme,
                                 const core::TrainedBundle& bundle,
                                 core::DefaultingMode mode) {
  core::SafeAgentConfig cfg;
  cfg.mode = mode;
  cfg.trigger.l = bench.config().trigger_l;
  cfg.trigger.k = bench.config().trigger_k;
  switch (scheme) {
    case core::Scheme::kNoveltyDetection:
      cfg.trigger.mode = core::TriggerMode::kBinary;
      break;
    case core::Scheme::kAgentEnsemble:
      cfg.trigger.mode = core::TriggerMode::kWindowVariance;
      cfg.trigger.alpha = bundle.alpha_pi;
      break;
    default:
      cfg.trigger.mode = core::TriggerMode::kWindowVariance;
      cfg.trigger.alpha = bundle.alpha_v;
      break;
  }
  return cfg;
}

std::shared_ptr<const serve::ServingModel> BuildModel(
    core::Workbench& bench, core::Scheme scheme,
    const core::TrainedBundle& bundle, core::SafeAgentConfig safety) {
  const std::size_t discard = bench.config().ensemble_discard;
  switch (scheme) {
    case core::Scheme::kNoveltyDetection:
      return serve::ServingModel::Novelty(bundle.agents, bundle.novelty,
                                          bench.eval_video(), bench.layout(),
                                          safety);
    case core::Scheme::kAgentEnsemble:
      return serve::ServingModel::AgentEnsemble(bundle.agents, discard,
                                                bench.eval_video(),
                                                bench.layout(), safety);
    default:
      return serve::ServingModel::ValueEnsemble(
          bundle.agents, bundle.value_nets, discard, bench.eval_video(),
          bench.layout(), safety);
  }
}

/// One concurrent viewer: an environment streaming one test trace through
/// one service session.
struct Viewer {
  explicit Viewer(abr::AbrEnvironment e) : env(std::move(e)) {}
  abr::AbrEnvironment env;
  serve::DecisionService::SessionId session = 0;
  mdp::State state;
  std::size_t dataset = 0;      // index into AllDatasetIds()
  std::size_t next_trace = 0;   // cursor into that dataset's test split
  double qoe = 0.0;             // reward accumulated this session
};

struct DatasetStats {
  std::size_t completed = 0;
  std::size_t defaulted = 0;  // sessions that ended defaulted
  double qoe_sum = 0.0;
};

/// Nearest-rank quantile on an already sorted vector.
double Quantile(const std::vector<double>& sorted, double q) {
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  std::string signal_name;
  std::size_t sessions = 1000;
  std::size_t rounds = 2000;
  std::size_t shards = 4;
  double open_loop_rate = 0.0;  // aggregate decisions/s; 0 = closed loop
  bool revocable = false;
  constexpr std::size_t kNoListen = static_cast<std::size_t>(-1);
  std::size_t listen_port = kNoListen;
  std::size_t max_in_flight = 64 * 1024;
  std::size_t lane_high_water = 16 * 1024;
  std::size_t max_sessions = 1 << 20;
  std::size_t edge_threads = 1;
  std::string backend_name = "epoll";
  bool online_calibration = false;
  double miscoverage = 0.05;
  std::size_t calibration_window = 4096;
  std::size_t calibration_refresh = 16;
  bool conformal_calibration = false;
  double conformal_miscoverage = -1.0;  // < 0 derives from the ND rate
  std::size_t conformal_radius = 1;

  util::ArgParser parser(
      "osap_serve",
      "Load generator for the sharded decision service, or (with --listen) "
      "the binary-protocol network-edge server.");
  parser.AddPositional("signal", "safety signal: us | upi | uv",
                       &signal_name);
  parser.AddOptionalPositional("sessions", "concurrent viewers (default "
                               "1000)", &sessions);
  parser.AddOptionalPositional("rounds", "decision rounds (default 2000)",
                               &rounds);
  parser.AddOptionalPositional("shards", "service shards (default 4)",
                               &shards);
  parser.AddOption("--sessions", "N", "concurrent viewers", &sessions);
  parser.AddOption("--rounds", "N", "decision rounds", &rounds);
  parser.AddOption("--shards", "N", "service shards", &shards);
  parser.AddOption("--open-loop", "RATE",
                   "schedule rounds at RATE decisions/s and measure latency "
                   "from the schedule (no coordinated omission)",
                   &open_loop_rate);
  parser.AddFlag("--revocable", "revocable defaulting (default permanent)",
                 &revocable);
  parser.AddOption("--listen", "PORT",
                   "serve the binary protocol on PORT instead of generating "
                   "load (0 = ephemeral, printed on stdout)",
                   &listen_port);
  parser.AddOption("--max-in-flight", "N",
                   "server mode: BUSY past N admitted undecided STEPs",
                   &max_in_flight);
  parser.AddOption("--lane-high-water", "N",
                   "server mode: BUSY past N pending STEPs on one shard lane",
                   &lane_high_water);
  parser.AddOption("--max-sessions", "N",
                   "server mode: FULL past N open sessions", &max_sessions);
  parser.AddOption("--edge-threads", "N",
                   "server mode: independent SO_REUSEPORT event-loop "
                   "threads, each owning shards/N lanes (default 1)",
                   &edge_threads);
  parser.AddOption("--backend", "NAME",
                   "server mode: IO backend, epoll | uring (io_uring "
                   "falls back to epoll with a notice when the kernel "
                   "denies it; default epoll)",
                   &backend_name);
  parser.AddFlag("--online-calibration",
                 "maintain the variance threshold online from streaming "
                 "quantile sketches (upi/uv only; DESIGN.md §11)",
                 &online_calibration);
  parser.AddOption("--miscoverage", "EPS",
                   "online calibration: target per-decision miscoverage "
                   "(default 0.05)",
                   &miscoverage);
  parser.AddOption("--calibration-window", "N",
                   "online calibration: observations per sketch generation "
                   "(default 4096)",
                   &calibration_window);
  parser.AddOption("--calibration-refresh", "N",
                   "online calibration: lane epochs between threshold "
                   "refreshes (default 16)",
                   &calibration_refresh);
  parser.AddFlag("--conformal-calibration",
                 "select the bundle's frozen alphas with conformal-batch "
                 "order statistics instead of the bisection sweep "
                 "(DESIGN.md §11; caches separately from bisection)",
                 &conformal_calibration);
  parser.AddOption("--conformal-miscoverage", "EPS",
                   "conformal-batch: target miscoverage (default: derive "
                   "from the ND trigger rate)",
                   &conformal_miscoverage);
  parser.AddOption("--conformal-radius", "N",
                   "conformal-batch: rank-refinement radius around the "
                   "conformal order statistic (default 1; 0 = pure "
                   "conformal, no QoE probes)",
                   &conformal_radius);
  if (!parser.Parse(argc, argv)) parser.ExitWithError();
  if (parser.HelpRequested()) parser.ExitWithHelp();
  const core::Scheme scheme = ParseSignal(signal_name, parser);
  const core::DefaultingMode mode = revocable
                                        ? core::DefaultingMode::kRevocable
                                        : core::DefaultingMode::kPermanent;
  if (sessions == 0 || rounds == 0 || shards == 0) {
    std::fprintf(stderr, "osap_serve: sessions/rounds/shards must be > 0\n");
    return 2;
  }
  if (listen_port != kNoListen && listen_port > 65535) {
    std::fprintf(stderr, "osap_serve: --listen PORT must be <= 65535\n");
    return 2;
  }
  net::BackendKind backend_kind = net::BackendKind::kEpoll;
  if (!net::ParseBackendKind(backend_name, backend_kind)) {
    std::fprintf(stderr,
                 "osap_serve: unknown --backend '%s' (epoll | uring)\n",
                 backend_name.c_str());
    return 2;
  }
  if (edge_threads == 0 || edge_threads > shards) {
    std::fprintf(stderr,
                 "osap_serve: need 1 <= --edge-threads <= --shards "
                 "(one shard lane per edge minimum)\n");
    return 2;
  }
  if (online_calibration &&
      scheme == core::Scheme::kNoveltyDetection) {
    std::fprintf(stderr,
                 "osap_serve: --online-calibration needs the "
                 "window-variance trigger (upi or uv); us serves the "
                 "paper's fixed binary threshold\n");
    return 2;
  }
  if (online_calibration && (miscoverage <= 0.0 || miscoverage >= 1.0)) {
    std::fprintf(stderr, "osap_serve: --miscoverage must be in (0, 1)\n");
    return 2;
  }
  if (conformal_miscoverage >= 1.0) {
    std::fprintf(stderr,
                 "osap_serve: --conformal-miscoverage must be < 1 "
                 "(negative derives it from the ND trigger rate)\n");
    return 2;
  }

  core::WorkbenchConfig cfg;
  cfg.use_cache = true;
  cfg.cache_dir = "osap_cache";
  cfg.conformal_calibration = conformal_calibration;
  cfg.conformal_miscoverage = conformal_miscoverage;
  cfg.conformal_refine_radius = conformal_radius;
  core::Workbench bench(cfg);
  constexpr auto kTrain = traces::DatasetId::kGamma22;
  const core::TrainedBundle& bundle = bench.BundleFor(kTrain);
  const core::SafeAgentConfig safety = TriggerFor(bench, scheme, bundle, mode);
  auto model = BuildModel(bench, scheme, bundle, safety);

  if (listen_port != kNoListen) {
    net::NetServerConfig net_cfg;
    net_cfg.port = static_cast<std::uint16_t>(listen_port);
    net_cfg.max_in_flight = max_in_flight;
    net_cfg.lane_high_water = lane_high_water;
    net_cfg.max_sessions = max_sessions;
    net_cfg.edge_threads = edge_threads;
    net_cfg.backend = backend_kind;
    net_cfg.service.shard_count = shards;
    net_cfg.service.online_calibration = online_calibration;
    net_cfg.service.calibration_miscoverage = miscoverage;
    net_cfg.service.calibration_window = calibration_window;
    net_cfg.service.calibration_refresh_epochs = calibration_refresh;
    net::NetServer server(model, net_cfg);
    server.Start();
    g_server = &server;
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    std::printf("osap_serve: %s, %zu shard(s), %zu edge(s), %s backend, "
                "listening on port %u\n",
                signal_name.c_str(), shards, edge_threads,
                server.BackendName(), server.Port());
    std::fflush(stdout);
    struct rusage ru_before {};
    getrusage(RUSAGE_SELF, &ru_before);
    server.Run();
    g_server = nullptr;
    struct rusage ru_after {};
    getrusage(RUSAGE_SELF, &ru_after);
    const net::ServerStats s = server.Stats();
    std::printf("\nshutdown: %llu decided, %llu busy, %llu rejected opens, "
                "%llu errors, %llu epochs, %llu sessions open\n",
                static_cast<unsigned long long>(s.decided),
                static_cast<unsigned long long>(s.busy),
                static_cast<unsigned long long>(s.rejected_opens),
                static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.epochs),
                static_cast<unsigned long long>(s.open_sessions));
    // The edge's syscall budget: the io_uring backend's whole point is
    // driving this ratio down versus epoll at the same decision count.
    const std::uint64_t syscalls = server.IoSyscalls();
    const long vcsw = ru_after.ru_nvcsw - ru_before.ru_nvcsw;
    const long ivcsw = ru_after.ru_nivcsw - ru_before.ru_nivcsw;
    std::printf("io: %s backend, %llu syscalls (%.2f per decision), "
                "%ld voluntary + %ld involuntary context switches\n",
                server.BackendName(),
                static_cast<unsigned long long>(syscalls),
                s.decided == 0 ? 0.0
                               : static_cast<double>(syscalls) /
                                     static_cast<double>(s.decided),
                vcsw, ivcsw);
    if (s.calibration_active != 0) {
      std::printf("online calibration: live alpha %.6g, %llu statistics "
                  "observed, %.2f%% above threshold (target %.2f%%)\n",
                  s.CalibrationAlpha(),
                  static_cast<unsigned long long>(s.calibration_observed),
                  100.0 * s.EmpiricalMiscoverage(), 100.0 * miscoverage);
    }
    const std::size_t rss_now = util::CurrentRssBytes();
    const std::size_t rss_peak = std::max(rss_now, util::PeakRssBytes());
    std::printf("process RSS: %.1f MiB now, %.1f MiB peak\n",
                static_cast<double>(rss_now) / (1024.0 * 1024.0),
                static_cast<double>(rss_peak) / (1024.0 * 1024.0));
    return 0;
  }

  serve::DecisionServiceConfig service_cfg;
  service_cfg.shard_count = shards;
  service_cfg.online_calibration = online_calibration;
  service_cfg.calibration_miscoverage = miscoverage;
  service_cfg.calibration_window = calibration_window;
  service_cfg.calibration_refresh_epochs = calibration_refresh;
  serve::DecisionService service(model, service_cfg);

  const std::vector<traces::DatasetId> datasets = traces::AllDatasetIds();
  std::vector<DatasetStats> stats(datasets.size());
  std::vector<Viewer> viewers;
  viewers.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    Viewer v(bench.MakeEvalEnvironment());
    v.dataset = i % datasets.size();
    const auto& tests = bench.DatasetFor(datasets[v.dataset]).test;
    v.next_trace = (i / datasets.size()) % tests.size();
    v.env.SetFixedTrace(tests[v.next_trace]);
    v.next_trace = (v.next_trace + 1) % tests.size();
    v.state = v.env.Reset();
    v.session = service.OpenSession();
    viewers.push_back(std::move(v));
  }
  std::printf("osap_serve: %s, %zu viewers over %zu datasets, %zu rounds, "
              "%zu shard(s), %s defaulting",
              signal_name.c_str(), sessions, datasets.size(), rounds, shards,
              mode == core::DefaultingMode::kPermanent ? "permanent"
                                                       : "revocable");
  // One round presents every viewer once, so RATE decisions/s means one
  // round every sessions/RATE seconds.
  const double round_interval_s =
      open_loop_rate > 0.0 ? static_cast<double>(sessions) / open_loop_rate
                           : 0.0;
  if (open_loop_rate > 0.0) {
    std::printf(", open-loop %.0f decisions/s (round every %.2f ms)\n",
                open_loop_rate, round_interval_s * 1e3);
  } else {
    std::printf(", closed-loop\n");
  }

  std::vector<serve::DecisionService::Request> requests(sessions);
  std::vector<mdp::Action> actions(sessions);
  std::vector<double> round_us;   // latency from (scheduled) round start
  round_us.reserve(rounds);
  double decide_seconds = 0.0;    // time actually inside DecideBatch
  std::size_t late_rounds = 0;    // rounds that began past their schedule
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < sessions; ++i) {
      requests[i] = {viewers[i].session, &viewers[i].state};
    }
    auto start = std::chrono::steady_clock::now();
    if (open_loop_rate > 0.0) {
      // Latency is measured from the scheduled arrival, not from when the
      // service got around to the round: a backlogged service pays its
      // queueing delay here instead of stalling the arrival clock.
      const auto scheduled =
          wall_start +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(static_cast<double>(round) *
                                            round_interval_s));
      if (start < scheduled) {
        std::this_thread::sleep_until(scheduled);
      } else if (round > 0) {
        ++late_rounds;
      }
      start = scheduled;
    }
    const auto t0 = std::chrono::steady_clock::now();
    service.DecideBatch(requests, actions);
    const auto t1 = std::chrono::steady_clock::now();
    round_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - start).count());
    decide_seconds += std::chrono::duration<double>(t1 - t0).count();

    for (std::size_t i = 0; i < sessions; ++i) {
      Viewer& v = viewers[i];
      mdp::StepResult r = v.env.Step(actions[i]);
      v.qoe += r.reward;
      if (!r.done) {
        v.state = std::move(r.next_state);
        continue;
      }
      DatasetStats& d = stats[v.dataset];
      ++d.completed;
      d.defaulted += service.Defaulted(v.session) ? 1 : 0;
      d.qoe_sum += v.qoe;
      service.CloseSession(v.session);
      v.session = service.OpenSession();  // recycles the freed slot
      const auto& tests = bench.DatasetFor(datasets[v.dataset]).test;
      v.env.SetFixedTrace(tests[v.next_trace]);
      v.next_trace = (v.next_trace + 1) % tests.size();
      v.state = v.env.Reset();
      v.qoe = 0.0;
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const double decisions =
      static_cast<double>(sessions) * static_cast<double>(rounds);
  std::sort(round_us.begin(), round_us.end());
  std::printf("\n%.0f decisions in %.1f s wall (%.0f decisions/s; "
              "%.0f/s inside DecideBatch)\n",
              decisions, wall_seconds, decisions / wall_seconds,
              decisions / decide_seconds);
  const char* basis = open_loop_rate > 0.0
                          ? "latency from scheduled arrival"
                          : "DecideBatch latency";
  std::printf("%s: p50 %.0f us  p99 %.0f us  p999 %.0f us  max %.0f us "
              "(%zu-session rounds)\n",
              basis, Quantile(round_us, 0.50), Quantile(round_us, 0.99),
              Quantile(round_us, 0.999), round_us.back(), sessions);
  if (open_loop_rate > 0.0) {
    std::printf("schedule: %zu of %zu rounds started late "
                "(backlog from the previous round)\n",
                late_rounds, rounds);
  } else {
    // Per-decision view of the same distribution: what one viewer pays
    // for its slice of a round (the population is constant, so this is
    // the round latency amortized over the batch).
    const double per_decision = 1.0 / static_cast<double>(sessions);
    std::printf(
        "per-decision latency: p50 %.2f us  p99 %.2f us  max %.2f us\n",
        Quantile(round_us, 0.50) * per_decision,
        Quantile(round_us, 0.99) * per_decision,
        round_us.back() * per_decision);
  }

  if (service.OnlineCalibration()) {
    const std::uint64_t observed = service.CalibrationObservations();
    const std::uint64_t exceeded = service.CalibrationExceedances();
    std::printf("\nonline calibration: frozen alpha %.6g -> live alpha "
                "%.6g, %llu statistics observed, %.2f%% above threshold "
                "(target %.2f%%)\n",
                safety.trigger.alpha, service.LiveAlpha(),
                static_cast<unsigned long long>(observed),
                observed == 0 ? 0.0
                              : 100.0 * static_cast<double>(exceeded) /
                                    static_cast<double>(observed),
                100.0 * miscoverage);
  }

  // Exact accounting of the service's own memory next to the process-level
  // view: bytes/session is what the slab/SoA layout controls, RSS is what
  // the operator sees.
  const serve::ServiceMemoryStats mem = service.MemoryStats();
  std::printf("\nsession memory: %.1f bytes/session over %zu sessions "
              "(%zu slots)\n",
              mem.BytesPerSession(), mem.open_sessions, mem.session_slots);
  std::printf("  hot %zu B  cold %zu B  rings %zu B  extractors %zu B  "
              "registry %zu B  shard scratch %.1f KiB\n",
              mem.session_hot_bytes, mem.session_cold_bytes,
              mem.trigger_ring_bytes, mem.extractor_bytes,
              mem.registry_bytes,
              static_cast<double>(mem.scratch_bytes) / 1024.0);
  // VmHWM can lag a page or two behind a just-grown VmRSS; clamp so the
  // peak never prints below the current value.
  const std::size_t rss_now = util::CurrentRssBytes();
  const std::size_t rss_peak = std::max(rss_now, util::PeakRssBytes());
  std::printf("process RSS: %.1f MiB now, %.1f MiB peak\n",
              static_cast<double>(rss_now) / (1024.0 * 1024.0),
              static_cast<double>(rss_peak) / (1024.0 * 1024.0));

  std::printf("\n%-28s %10s %10s %10s\n", "dataset", "sessions", "defaulted",
              "mean QoE");
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const DatasetStats& s = stats[d];
    if (s.completed == 0) {
      std::printf("%-28s %10s %10s %10s\n",
                  traces::DatasetLabel(datasets[d]).c_str(), "-", "-", "-");
      continue;
    }
    std::printf("%-28s %10zu %9.0f%% %10.1f\n",
                traces::DatasetLabel(datasets[d]).c_str(), s.completed,
                100.0 * static_cast<double>(s.defaulted) /
                    static_cast<double>(s.completed),
                s.qoe_sum / static_cast<double>(s.completed));
  }
  return 0;
}
