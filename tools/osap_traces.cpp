// osap_traces: generate and export the paper's datasets.
//
// Usage:
//   osap_traces list
//   osap_traces stats   <dataset> [count] [duration_s] [seed]
//   osap_traces export  <dataset> <out_dir> [count] [duration_s] [seed]
//   osap_traces mahimahi <dataset> <out_dir> [count] [duration_s] [seed]
//
// `export` writes the train/validation/test splits as CSV trace files
// (readable back with traces::ReadTraceDirectory); `mahimahi` writes
// MahiMahi packet-opportunity files usable with the real link emulator.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "traces/dataset.h"
#include "traces/trace_io.h"
#include "util/stats.h"

using namespace osap;

namespace {

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  osap_traces list\n"
               "  osap_traces stats    <dataset> [count] [duration] [seed]\n"
               "  osap_traces export   <dataset> <dir> [count] [duration] "
               "[seed]\n"
               "  osap_traces mahimahi <dataset> <dir> [count] [duration] "
               "[seed]\n");
  std::exit(2);
}

traces::DatasetId ParseDataset(const std::string& name) {
  for (traces::DatasetId id : traces::AllDatasetIds()) {
    if (traces::DatasetName(id) == name) return id;
  }
  std::fprintf(stderr, "unknown dataset '%s'; try `osap_traces list`\n",
               name.c_str());
  std::exit(2);
}

traces::DatasetConfig ParseConfig(int argc, char** argv, int first) {
  traces::DatasetConfig cfg;
  if (argc > first) cfg.trace_count = static_cast<std::size_t>(std::atoi(argv[first]));
  if (argc > first + 1) cfg.trace_duration_seconds = std::atof(argv[first + 1]);
  if (argc > first + 2) cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[first + 2]));
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string command = argv[1];

  if (command == "list") {
    std::printf("%-12s %-18s %s\n", "name", "label", "kind");
    for (traces::DatasetId id : traces::AllDatasetIds()) {
      std::printf("%-12s %-18s %s\n", traces::DatasetName(id).c_str(),
                  traces::DatasetLabel(id).c_str(),
                  traces::IsSyntheticIid(id) ? "synthetic i.i.d."
                                             : "empirical-like");
    }
    return 0;
  }

  if (argc < 3) Usage();
  const traces::DatasetId id = ParseDataset(argv[2]);

  if (command == "stats") {
    const traces::Dataset ds =
        traces::BuildDataset(id, ParseConfig(argc, argv, 3));
    RunningStats all;
    for (const auto* split : {&ds.train, &ds.validation, &ds.test}) {
      for (const auto& t : *split) {
        for (double v : t.samples()) all.Add(v);
      }
    }
    std::printf("dataset:    %s\n", traces::DatasetLabel(id).c_str());
    std::printf("traces:     %zu (train %zu / validation %zu / test %zu)\n",
                ds.TotalTraces(), ds.train.size(), ds.validation.size(),
                ds.test.size());
    std::printf("throughput: mean %.2f Mbps, std %.2f, min %.2f, max %.2f\n",
                all.Mean(), all.StdDev(), all.Min(), all.Max());
    return 0;
  }

  if (command == "export" || command == "mahimahi") {
    if (argc < 4) Usage();
    const std::filesystem::path dir = argv[3];
    const traces::Dataset ds =
        traces::BuildDataset(id, ParseConfig(argc, argv, 4));
    std::size_t written = 0;
    for (const auto& [split, traces_ptr] :
         {std::pair{"train", &ds.train},
          std::pair{"validation", &ds.validation},
          std::pair{"test", &ds.test}}) {
      const auto split_dir = dir / split;
      if (command == "export") {
        traces::WriteTraceDirectory(*traces_ptr, split_dir);
      } else {
        std::filesystem::create_directories(split_dir);
        for (std::size_t i = 0; i < traces_ptr->size(); ++i) {
          traces::WriteMahimahiTrace(
              (*traces_ptr)[i],
              split_dir / (std::to_string(i) + ".mahi"));
        }
      }
      written += traces_ptr->size();
    }
    std::printf("wrote %zu traces under %s\n", written, dir.c_str());
    return 0;
  }

  Usage();
}
