// osap_traces: generate and export the paper's datasets.
//
// Usage:
//   osap_traces list
//   osap_traces stats   <dataset> [count] [duration_s] [seed]
//   osap_traces export  <dataset> <out_dir> [count] [duration_s] [seed]
//   osap_traces mahimahi <dataset> <out_dir> [count] [duration_s] [seed]
//
// `export` writes the train/validation/test splits as CSV trace files
// (readable back with traces::ReadTraceDirectory); `mahimahi` writes
// MahiMahi packet-opportunity files usable with the real link emulator.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "traces/dataset.h"
#include "traces/trace_io.h"
#include "util/arg_parser.h"
#include "util/stats.h"

using namespace osap;

namespace {

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: osap_traces <command> [args]\n"
               "  osap_traces list\n"
               "  osap_traces stats    <dataset> [count] [duration] [seed]\n"
               "  osap_traces export   <dataset> <dir> [count] [duration] "
               "[seed]\n"
               "  osap_traces mahimahi <dataset> <dir> [count] [duration] "
               "[seed]\n"
               "(per-command --help available, e.g. `osap_traces stats "
               "--help`)\n");
  std::exit(2);
}

traces::DatasetId ParseDataset(const std::string& name) {
  for (traces::DatasetId id : traces::AllDatasetIds()) {
    if (traces::DatasetName(id) == name) return id;
  }
  std::fprintf(stderr, "unknown dataset '%s'; try `osap_traces list`\n",
               name.c_str());
  std::exit(2);
}

/// One ArgParser per subcommand (parsed from argv[2] on), sharing the
/// generation knobs: [count] [duration] [seed] optional positionals.
struct SubcommandArgs {
  std::string dataset;
  std::string dir;  // export/mahimahi only
  traces::DatasetConfig config;

  void Parse(int argc, char** argv, const char* command,
             const char* summary, bool wants_dir) {
    util::ArgParser parser(std::string("osap_traces ") + command, summary);
    parser.AddPositional("dataset", "dataset name (see `osap_traces list`)",
                         &dataset);
    if (wants_dir) {
      parser.AddPositional("dir", "output directory (split subdirs created)",
                           &dir);
    }
    seed_ = static_cast<std::size_t>(config.seed);
    parser.AddOptionalPositional("count", "traces to generate", &count_);
    parser.AddOptionalPositional("duration", "trace duration in seconds",
                                 &config.trace_duration_seconds);
    parser.AddOptionalPositional("seed", "generator seed", &seed_);
    if (!parser.Parse(argc, argv, 2)) parser.ExitWithError();
    if (parser.HelpRequested()) parser.ExitWithHelp();
    if (count_ != 0) config.trace_count = count_;
    config.seed = seed_;
  }

 private:
  std::size_t count_ = 0;  // 0 keeps the DatasetConfig default
  std::size_t seed_ = 0;   // staged through size_t for the parser
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string command = argv[1];

  if (command == "list") {
    std::printf("%-12s %-18s %s\n", "name", "label", "kind");
    for (traces::DatasetId id : traces::AllDatasetIds()) {
      std::printf("%-12s %-18s %s\n", traces::DatasetName(id).c_str(),
                  traces::DatasetLabel(id).c_str(),
                  traces::IsSyntheticIid(id) ? "synthetic i.i.d."
                                             : "empirical-like");
    }
    return 0;
  }

  if (command == "stats") {
    SubcommandArgs args;
    args.Parse(argc, argv, "stats",
               "Generate a dataset and print its split sizes and "
               "throughput statistics.",
               /*wants_dir=*/false);
    const traces::DatasetId id = ParseDataset(args.dataset);
    const traces::Dataset ds = traces::BuildDataset(id, args.config);
    RunningStats all;
    for (const auto* split : {&ds.train, &ds.validation, &ds.test}) {
      for (const auto& t : *split) {
        for (double v : t.samples()) all.Add(v);
      }
    }
    std::printf("dataset:    %s\n", traces::DatasetLabel(id).c_str());
    std::printf("traces:     %zu (train %zu / validation %zu / test %zu)\n",
                ds.TotalTraces(), ds.train.size(), ds.validation.size(),
                ds.test.size());
    std::printf("throughput: mean %.2f Mbps, std %.2f, min %.2f, max %.2f\n",
                all.Mean(), all.StdDev(), all.Min(), all.Max());
    return 0;
  }

  if (command == "export" || command == "mahimahi") {
    SubcommandArgs args;
    args.Parse(argc, argv, command.c_str(),
               command == "export"
                   ? "Write the train/validation/test splits as CSV trace "
                     "files."
                   : "Write MahiMahi packet-opportunity files for the real "
                     "link emulator.",
               /*wants_dir=*/true);
    const traces::DatasetId id = ParseDataset(args.dataset);
    const std::filesystem::path dir = args.dir;
    const traces::Dataset ds = traces::BuildDataset(id, args.config);
    std::size_t written = 0;
    for (const auto& [split, traces_ptr] :
         {std::pair{"train", &ds.train},
          std::pair{"validation", &ds.validation},
          std::pair{"test", &ds.test}}) {
      const auto split_dir = dir / split;
      if (command == "export") {
        traces::WriteTraceDirectory(*traces_ptr, split_dir);
      } else {
        std::filesystem::create_directories(split_dir);
        for (std::size_t i = 0; i < traces_ptr->size(); ++i) {
          traces::WriteMahimahiTrace(
              (*traces_ptr)[i],
              split_dir / (std::to_string(i) + ".mahi"));
        }
      }
      written += traces_ptr->size();
    }
    std::printf("wrote %zu traces under %s\n", written, dir.c_str());
    return 0;
  }

  Usage();
}
