// osap_client: open-loop load generator for the network edge.
//
// Drives an `osap_serve --listen` server over N TCP connections (one
// worker thread each - with a SO_REUSEPORT multi-edge server every
// connection lands on some edge's listener), each carrying an equal
// share of the session population.
//
// Two session modes:
//
//   default        Every session is a real ABR viewer: a local
//                  AbrEnvironment streams one of the six datasets'
//                  held-out test traces (dataset i % 6, mixing ID and
//                  OOD), the server's decision drives the environment
//                  forward, and finished sessions reopen on the next
//                  trace so the population stays constant. ~6 KB of
//                  client memory per session.
//
//   --replay K     The million-session mode: K state SEQUENCES are
//                  recorded up front from real environments (same
//                  dataset mix, fixed action), shared read-only by every
//                  session - session i replays sequence i % K. A live
//                  session is then just an id (8 bytes), so the CLIENT
//                  fits 100k-1M open sessions while the server still
//                  sees distinct sessions with well-formed, distinct
//                  state streams. Opens and closes are pipelined in
//                  bursts; decisions do not feed back into the states.
//
// The arrival process is OPEN-LOOP: step r of every session is scheduled
// at t0 + r * sessions/RATE (an aggregate RATE decisions/s across the
// whole population), and each reply's latency is measured from that
// SCHEDULED send time - a server that falls behind accrues queueing
// delay in the reported percentiles instead of silently slowing the
// arrival clock down (no coordinated omission). Within a connection a
// round's STEPs are pipelined (flushed and collected in bounded chunks,
// so a million-session round cannot grow an unbounded write buffer).
//
// BUSY replies leave the viewer where it is (the same state is resent
// next round in default mode) and are counted separately; any ERROR
// status or transport failure counts as a protocol error. Exit status is
// nonzero when any protocol error occurred.
//
// With --affinity (pairs with the server's --edge-threads) each worker
// PINS its connection to one edge: session ids are edge-affine on the
// server (id % shards -> lane -> contiguous group -> edge), so a session
// must be stepped on a connection owned by its edge, and which edge a
// fresh connection lands on is the kernel's 4-tuple hash. The worker
// dials, opens a throwaway probe session, derives the edge from the
// granted id, and redials until it holds a connection on its target edge
// (worker w -> edge w % edges, a coupon-collector loop). Every session
// the worker then opens is granted BY that edge, so its OPEN/STEP/CLOSE
// traffic is edge-affine by construction and every edge carries load
// even when the hash would have piled all connections onto one listener.
// Requires --shards and --edges to match the server.
//
// Usage:
//   osap_client <host> <port> [--threads N | --connections N]
//               [--sessions N] [--rate RATE] [--rounds N] [--replay K]
//               [--affinity --shards N --edges N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "abr/abr_environment.h"
#include "net/backend.h"
#include "net/client.h"
#include "traces/dataset.h"
#include "util/arg_parser.h"
#include "util/memory_meter.h"

using namespace osap;

namespace {

using Clock = std::chrono::steady_clock;

/// One concurrent viewer driven over the wire (default mode).
struct Viewer {
  explicit Viewer(abr::AbrEnvironment e) : env(std::move(e)) {}
  abr::AbrEnvironment env;
  std::uint64_t session = 0;
  mdp::State state;
  std::size_t dataset = 0;
  std::size_t next_trace = 0;
};

struct WorkerResult {
  std::vector<double> latency_us;  // from scheduled send to reply
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t errors = 0;
  std::uint64_t completed_sessions = 0;
  std::uint64_t open_sessions = 0;  // replay mode: opened on this conn
};

double Quantile(const std::vector<double>& sorted, double q) {
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Replay mode's shared state pool: `k` sequences of up to `len` states
/// each, recorded by streaming real test traces under a fixed action
/// (the recorded states are well-formed inputs; what the server decides
/// about them never feeds back). Read-only after construction.
std::vector<std::vector<mdp::State>> RecordSequences(
    const std::vector<traces::Dataset>& datasets, std::size_t k,
    std::size_t len) {
  std::vector<std::vector<mdp::State>> sequences;
  sequences.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    const traces::Dataset& dataset = datasets[s % datasets.size()];
    const auto& tests = dataset.test;
    std::size_t trace = (s / datasets.size()) % tests.size();
    abr::AbrEnvironment env(abr::MakeEnvivioLikeVideo(5), {});
    env.SetFixedTrace(tests[trace]);
    std::vector<mdp::State> seq;
    seq.reserve(len);
    mdp::State state = env.Reset();
    while (seq.size() < len) {
      seq.push_back(state);
      mdp::StepResult r = env.Step(0);
      if (r.done) {
        trace = (trace + 1) % tests.size();
        env.SetFixedTrace(tests[trace]);
        state = env.Reset();
      } else {
        state = std::move(r.next_state);
      }
    }
    sequences.push_back(std::move(seq));
  }
  return sequences;
}

/// The edge owning `shard` under the service's contiguous group split
/// (sizes differ by at most one, wider groups first; mirrors
/// DecisionService::GroupBegin).
std::size_t EdgeOfShard(std::size_t shard, std::size_t shards,
                        std::size_t edges) {
  const std::size_t base = shards / edges;
  const std::size_t rem = shards % edges;
  const std::size_t wide = rem * (base + 1);  // shards in base+1 groups
  return shard < wide ? shard / (base + 1)
                      : rem + (shard - wide) / base;
}

/// Redials until `client` holds a connection on `target_edge`, detected
/// by opening a throwaway probe session and deriving the edge from the
/// granted id (ids are edge-affine: id % shards lands in the opening
/// edge's group). Each redial gets a fresh ephemeral port, so the
/// kernel's 4-tuple hash re-rolls - a coupon-collector loop that needs
/// ~edges * ln(edges) attempts in expectation. Throws after `attempts`
/// misses.
void AcquireEdge(net::Client& client, const std::string& host,
                 std::uint16_t port, std::size_t target_edge,
                 std::size_t shards, std::size_t edges,
                 std::size_t attempts = 512) {
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (!client.Connected()) client.Connect(host, port);
    const std::uint64_t probe = client.OpenSession();
    const std::size_t edge =
        EdgeOfShard(static_cast<std::size_t>(probe % shards), shards, edges);
    client.CloseSession(probe);
    if (edge == target_edge) return;
    client.Close();  // reconnect re-rolls the 4-tuple hash
  }
  throw std::runtime_error(
      "edge affinity: target edge not reached (do --shards/--edges match "
      "the server?)");
}

/// Pipelined burst of OPEN_SESSIONs; non-OK opens count as errors and
/// leave the population smaller. Returns the granted session ids.
std::vector<std::uint64_t> OpenBurst(net::Client& client, std::size_t count,
                                     WorkerResult& res) {
  constexpr std::size_t kBurst = 1024;
  std::vector<std::uint64_t> sessions;
  sessions.reserve(count);
  std::uint64_t rid = 0;
  std::size_t opened = 0;
  while (opened < count) {
    const std::size_t burst = std::min(kBurst, count - opened);
    for (std::size_t i = 0; i < burst; ++i) client.SendOpen(++rid);
    client.Flush();
    for (std::size_t i = 0; i < burst; ++i) {
      net::Reply reply;
      if (!client.ReadReply(reply)) {
        throw std::runtime_error("server closed during session opens");
      }
      if (reply.status == net::Status::kOk) {
        sessions.push_back(reply.session_id);
      } else {
        ++res.errors;  // kFull against the sweep's population is a misrun
      }
    }
    opened += burst;
  }
  res.open_sessions = sessions.size();
  return sessions;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host;
  std::size_t port = 0;
  std::size_t connections = 4;
  std::size_t sessions = 64;
  double rate = 1000.0;  // aggregate decisions/s over the population
  std::size_t rounds = 200;
  std::size_t replay = 0;  // 0 = full per-session environments
  bool affinity = false;
  std::size_t shards = 0;  // server shard count (required with --affinity)
  std::size_t edges = 0;   // server edge count (required with --affinity)
  std::string backend_name;  // annotation only; the server owns the choice

  util::ArgParser parser(
      "osap_client",
      "Open-loop load generator for the osap_serve --listen network edge: "
      "scheduled arrivals over N connections, latency measured from the "
      "scheduled send (no coordinated omission).");
  parser.AddPositional("host", "server address (e.g. 127.0.0.1)", &host);
  parser.AddPositional("port", "server port", &port);
  parser.AddOption("--connections", "N", "TCP connections (default 4)",
                   &connections);
  parser.AddOption("--threads", "N",
                   "worker threads, one connection each (synonym for "
                   "--connections; pairs with the server's --edge-threads)",
                   &connections);
  parser.AddOption("--sessions", "N",
                   "total concurrent sessions across all connections "
                   "(default 64)",
                   &sessions);
  parser.AddOption("--rate", "RATE",
                   "aggregate scheduled arrival rate in decisions/s "
                   "(default 1000)",
                   &rate);
  parser.AddOption("--rounds", "N",
                   "steps scheduled per session (default 200)", &rounds);
  parser.AddOption("--replay", "K",
                   "share K recorded state sequences across all sessions "
                   "instead of one environment per session (the 100k-1M "
                   "session mode); 0 = full environments (default)",
                   &replay);
  parser.AddFlag("--affinity",
                 "pin worker w's connection to edge w %% edges by probe-"
                 "and-redial (multi-edge servers; needs --shards/--edges "
                 "matching the server)",
                 &affinity);
  parser.AddOption("--shards", "N",
                   "server's shard count (required with --affinity)",
                   &shards);
  parser.AddOption("--edges", "N",
                   "server's --edge-threads count (required with "
                   "--affinity)",
                   &edges);
  parser.AddOption("--backend", "NAME",
                   "annotate this run with the server's IO backend "
                   "(epoll | uring; validated and echoed - the server "
                   "side of the protocol is backend-transparent)",
                   &backend_name);
  if (!parser.Parse(argc, argv)) parser.ExitWithError();
  if (parser.HelpRequested()) parser.ExitWithHelp();
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "osap_client: port must be 1..65535\n");
    return 2;
  }
  if (connections == 0 || sessions < connections || rounds == 0 ||
      !(rate > 0.0)) {
    std::fprintf(stderr,
                 "osap_client: need connections >= 1, sessions >= "
                 "connections, rounds >= 1, rate > 0\n");
    return 2;
  }
  if (affinity && (shards == 0 || edges == 0 || shards < edges)) {
    std::fprintf(stderr,
                 "osap_client: --affinity needs --shards >= --edges >= 1 "
                 "matching the server\n");
    return 2;
  }
  if (!backend_name.empty()) {
    net::BackendKind backend_kind;
    if (!net::ParseBackendKind(backend_name, backend_kind)) {
      std::fprintf(stderr,
                   "osap_client: unknown --backend '%s' (epoll | uring)\n",
                   backend_name.c_str());
      return 2;
    }
    backend_name = net::BackendKindName(backend_kind);
  }

  // Build the datasets once; worker threads only read the trace vectors.
  const std::vector<traces::DatasetId> dataset_ids = traces::AllDatasetIds();
  std::vector<traces::Dataset> datasets;
  datasets.reserve(dataset_ids.size());
  for (traces::DatasetId id : dataset_ids) {
    datasets.push_back(traces::BuildDataset(id));
  }

  // Replay pool: recorded once, shared read-only by every worker. Long
  // runs cycle the sequences (round r sends state r % length).
  std::vector<std::vector<mdp::State>> sequences;
  if (replay > 0) {
    sequences = RecordSequences(datasets, replay, std::min<std::size_t>(
                                                      rounds, 256));
  }

  // One round steps every session once: with an aggregate arrival rate of
  // RATE decisions/s, round r of every session is scheduled at
  // t0 + r * sessions/RATE.
  const double round_interval_s = static_cast<double>(sessions) / rate;
  std::printf("osap_client: %zu sessions over %zu connections -> %s:%zu, "
              "%zu rounds, open-loop %.0f decisions/s "
              "(round every %.2f ms)%s\n",
              sessions, connections, host.c_str(), port, rounds, rate,
              round_interval_s * 1e3,
              replay > 0 ? ", replay mode" : "");
  if (!backend_name.empty()) {
    std::printf("server backend: %s\n", backend_name.c_str());
  }
  if (affinity) {
    std::printf("edge affinity: worker w -> edge w %% %zu over %zu "
                "shards\n",
                edges, shards);
  }

  std::vector<WorkerResult> results(connections);
  const auto t0 = Clock::now() + std::chrono::milliseconds(50);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (std::size_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerResult& res = results[w];
      // Connection w owns sessions with global index i where
      // i % connections == w.
      std::size_t local_count = sessions / connections +
                                (w < sessions % connections ? 1 : 0);
      net::Client client;
      try {
        client.Connect(host, static_cast<std::uint16_t>(port));
        if (affinity) {
          // Sessions are edge-affine on the server; pin this worker's
          // connection to its target edge so the sessions it opens (and
          // every STEP/CLOSE they send) belong there by construction.
          AcquireEdge(client, host, static_cast<std::uint16_t>(port),
                      w % edges, shards, edges);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "osap_client: %s\n", e.what());
        res.errors += local_count * rounds;
        return;
      }

      if (replay > 0) {
        // --- replay mode: sessions are ids over shared sequences -------
        try {
          const std::vector<std::uint64_t> ids =
              OpenBurst(client, local_count, res);
          res.latency_us.reserve(ids.size() * rounds);
          // STEP bursts are chunked: a million-session round pipelined in
          // one flush would grow the write buffer (and the server's reply
          // queue) without bound; 4096-frame chunks bound both while
          // keeping the wire full.
          constexpr std::size_t kChunk = 4096;
          std::uint64_t rid = 1 << 20;
          for (std::size_t round = 0; round < rounds; ++round) {
            const auto scheduled =
                t0 + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             static_cast<double>(round) * round_interval_s));
            std::this_thread::sleep_until(scheduled);
            for (std::size_t base = 0; base < ids.size(); base += kChunk) {
              const std::size_t n = std::min(kChunk, ids.size() - base);
              for (std::size_t v = 0; v < n; ++v) {
                const std::size_t global = w + (base + v) * connections;
                const auto& seq = sequences[global % sequences.size()];
                client.SendStep(++rid, ids[base + v],
                                seq[round % seq.size()]);
              }
              client.Flush();
              for (std::size_t v = 0; v < n; ++v) {
                net::Reply reply;
                if (!client.ReadReply(reply)) {
                  throw std::runtime_error("server closed the connection");
                }
                res.latency_us.push_back(
                    std::chrono::duration<double, std::micro>(Clock::now() -
                                                              scheduled)
                        .count());
                if (reply.status == net::Status::kOk) {
                  ++res.ok;
                } else if (reply.status == net::Status::kBusy) {
                  ++res.busy;
                } else {
                  ++res.errors;
                }
              }
            }
          }
          // Pipelined close of the whole population.
          for (std::size_t base = 0; base < ids.size(); base += kChunk) {
            const std::size_t n = std::min(kChunk, ids.size() - base);
            for (std::size_t v = 0; v < n; ++v) {
              client.SendClose(++rid, ids[base + v]);
            }
            client.Flush();
            for (std::size_t v = 0; v < n; ++v) {
              net::Reply reply;
              if (!client.ReadReply(reply)) {
                throw std::runtime_error("server closed during closes");
              }
              if (reply.status != net::Status::kOk) ++res.errors;
            }
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "osap_client: %s\n", e.what());
          ++res.errors;
        }
        return;
      }

      // --- default mode: one real environment per session --------------
      abr::AbrEnvironmentConfig env_cfg;
      std::vector<Viewer> viewers;
      viewers.reserve(local_count);
      try {
        for (std::size_t v = 0; v < local_count; ++v) {
          const std::size_t global = w + v * connections;
          Viewer viewer(abr::AbrEnvironment(abr::MakeEnvivioLikeVideo(5),
                                            env_cfg));
          viewer.dataset = global % datasets.size();
          const auto& tests = datasets[viewer.dataset].test;
          viewer.next_trace = (global / datasets.size()) % tests.size();
          viewer.env.SetFixedTrace(tests[viewer.next_trace]);
          viewer.next_trace = (viewer.next_trace + 1) % tests.size();
          viewer.state = viewer.env.Reset();
          viewer.session = client.OpenSession();
          viewers.push_back(std::move(viewer));
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "osap_client: open: %s\n", e.what());
        res.errors += local_count * rounds;
        return;
      }
      res.open_sessions = viewers.size();
      res.latency_us.reserve(local_count * rounds);
      std::vector<std::uint64_t> request_of(viewers.size());
      try {
        for (std::size_t round = 0; round < rounds; ++round) {
          const auto scheduled =
              t0 + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(
                           static_cast<double>(round) * round_interval_s));
          std::this_thread::sleep_until(scheduled);
          // Pipeline the whole round: encode every session's STEP, one
          // flush, then collect the replies in arrival order.
          for (std::size_t v = 0; v < viewers.size(); ++v) {
            request_of[v] = round * viewers.size() + v + 1;
            client.SendStep(request_of[v], viewers[v].session,
                            viewers[v].state);
          }
          client.Flush();
          for (std::size_t v = 0; v < viewers.size(); ++v) {
            net::Reply reply;
            if (!client.ReadReply(reply)) {
              throw std::runtime_error("server closed the connection");
            }
            const auto now = Clock::now();
            res.latency_us.push_back(
                std::chrono::duration<double, std::micro>(now - scheduled)
                    .count());
            // Match the reply to its viewer by the echoed request_id.
            const std::uint64_t seq = reply.request_id - 1;
            if (seq / viewers.size() != round) {
              ++res.errors;
              continue;
            }
            Viewer& viewer = viewers[seq % viewers.size()];
            if (reply.status == net::Status::kBusy) {
              ++res.busy;  // resend the same state next round
              continue;
            }
            if (reply.status != net::Status::kOk) {
              ++res.errors;
              continue;
            }
            ++res.ok;
            mdp::StepResult r = viewer.env.Step(
                static_cast<mdp::Action>(reply.action));
            if (!r.done) {
              viewer.state = std::move(r.next_state);
              continue;
            }
            ++res.completed_sessions;
            client.CloseSession(viewer.session);
            const auto& tests = datasets[viewer.dataset].test;
            viewer.env.SetFixedTrace(tests[viewer.next_trace]);
            viewer.next_trace = (viewer.next_trace + 1) % tests.size();
            viewer.state = viewer.env.Reset();
            viewer.session = client.OpenSession();
          }
        }
        for (Viewer& viewer : viewers) client.CloseSession(viewer.session);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "osap_client: %s\n", e.what());
        ++res.errors;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<double> latency;
  std::uint64_t ok = 0;
  std::uint64_t busy = 0;
  std::uint64_t errors = 0;
  std::uint64_t completed = 0;
  std::uint64_t opened = 0;
  for (const WorkerResult& res : results) {
    latency.insert(latency.end(), res.latency_us.begin(),
                   res.latency_us.end());
    ok += res.ok;
    busy += res.busy;
    errors += res.errors;
    completed += res.completed_sessions;
    opened += res.open_sessions;
  }
  if (latency.empty()) {
    std::fprintf(stderr, "osap_client: no replies received\n");
    return 1;
  }
  std::sort(latency.begin(), latency.end());
  std::printf("\n%llu ok, %llu busy, %llu protocol errors, "
              "%llu sessions open%s, %llu completed in %.1f s "
              "(%.0f decisions/s achieved)\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(busy),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(opened),
              replay > 0 ? " (replay)" : "",
              static_cast<unsigned long long>(completed), wall_s,
              static_cast<double>(ok) / wall_s);
  std::printf("latency from scheduled send: p50 %.0f us  p99 %.0f us  "
              "p999 %.0f us  max %.0f us\n",
              Quantile(latency, 0.50), Quantile(latency, 0.99),
              Quantile(latency, 0.999), latency.back());
  // The client's own footprint matters in replay mode: 1M sessions must
  // fit beside the server on one host (the latency sample buffer
  // dominates - sessions themselves are 8 bytes each).
  const std::size_t rss_now = util::CurrentRssBytes();
  std::printf("client RSS: %.1f MiB\n",
              static_cast<double>(rss_now) / (1024.0 * 1024.0));
  return errors == 0 ? 0 : 1;
}
