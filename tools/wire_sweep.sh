#!/usr/bin/env bash
# wire_sweep.sh: end-to-end over-the-wire session sweep (DESIGN.md §10).
#
# Launches `osap_serve --listen 0` (ephemeral port, parsed from its
# stdout), drives it with `osap_client` in replay mode - the 100k-1M
# open-session configuration - then SIGTERMs the server and checks the
# graceful-shutdown accounting: the client saw zero protocol errors and
# the server drained to zero open sessions. The ctest `-L net` entry runs
# this in a fast smoke config (100k sessions, few rounds) so the sweep
# path cannot rot between the full EXPERIMENTS.md runs.
#
# Usage:
#   wire_sweep.sh SERVE CLIENT [sessions] [rounds] [rate] [edge_threads]
#                 [shards] [client_threads] [replay] [signal] [backend]
#
# BACKEND is epoll (default), uring, or both (runs the sweep once per
# backend; a kernel that denies io_uring makes the uring leg fall back to
# epoll with a notice, which the sweep surfaces via the server's "io:"
# summary line). Run from a directory with an ./osap_cache symlink (the
# server loads the trained bundle from it).
set -euo pipefail

SERVE=${1:?usage: wire_sweep.sh SERVE CLIENT [sessions] [rounds] ...}
CLIENT=${2:?usage: wire_sweep.sh SERVE CLIENT [sessions] [rounds] ...}
SESSIONS=${3:-100000}
ROUNDS=${4:-2}
RATE=${5:-2000000}
EDGES=${6:-2}
SHARDS=${7:-4}
THREADS=${8:-2}
REPLAY=${9:-96}
SIGNAL=${10:-us}
BACKEND=${11:-epoll}

case "$BACKEND" in
  epoll|uring) BACKENDS="$BACKEND" ;;
  both) BACKENDS="epoll uring" ;;
  *)
    echo "wire_sweep: unknown backend '$BACKEND' (epoll | uring | both)" >&2
    exit 2
    ;;
esac

OUT=$(mktemp -d)
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$OUT"
}
trap cleanup EXIT

run_sweep() {
  local backend=$1
  : >"$OUT/serve.log"

  "$SERVE" "$SIGNAL" --listen 0 --shards "$SHARDS" --edge-threads "$EDGES" \
    --backend "$backend" >"$OUT/serve.log" 2>&1 &
  SERVER_PID=$!

  # The server prints "listening on port N" once bound (after the model
  # loads, which can take a while on a cold cache).
  local port=
  for _ in $(seq 1 1200); do
    port=$(sed -n 's/.*listening on port \([0-9][0-9]*\)$/\1/p' \
           "$OUT/serve.log")
    [ -n "$port" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      cat "$OUT/serve.log" >&2
      echo "wire_sweep: server exited before listening" >&2
      exit 1
    fi
    sleep 0.5
  done
  if [ -z "$port" ]; then
    echo "wire_sweep: server never printed its port" >&2
    exit 1
  fi
  echo "wire_sweep: $SESSIONS sessions x $ROUNDS rounds -> port $port" \
       "($EDGES edge(s), $SHARDS shard(s), $THREADS client thread(s)," \
       "$backend backend)"

  # Nonzero client exit (any protocol error) fails the sweep via pipefail.
  "$CLIENT" 127.0.0.1 "$port" --threads "$THREADS" --sessions "$SESSIONS" \
    --rounds "$ROUNDS" --rate "$RATE" --replay "$REPLAY" \
    --backend "$backend" | tee "$OUT/client.log"

  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
  SERVER_PID=
  cat "$OUT/serve.log"

  # Graceful shutdown drained everything: the counter lines printed and
  # no session outlived its client.
  grep -q "shutdown:" "$OUT/serve.log"
  grep -q " 0 sessions open" "$OUT/serve.log"
  grep -q "^io: " "$OUT/serve.log"
}

for backend in $BACKENDS; do
  run_sweep "$backend"
done
echo "wire_sweep: OK"
