// osap_eval: evaluate a saved Pensieve agent (osap_train output) on any
// dataset, with or without a safety net.
//
// Usage:
//   osap_eval <weights.bin> <train_dataset> <test_dataset> [--safe]
//
// `train_dataset` identifies the distribution the agent was trained on
// (needed to fit the U_S novelty detector when --safe is given);
// `test_dataset`'s held-out test split is streamed. With --safe the agent
// is wrapped in SafeAgent(Pensieve -> BufferBased, NoveltyDetector).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/evaluation.h"
#include "core/novelty_detector.h"
#include "core/safe_agent.h"
#include "nn/serialize.h"
#include "policies/buffer_based.h"
#include "policies/pensieve_net.h"
#include "policies/pensieve_policy.h"
#include "policies/random_policy.h"
#include "traces/dataset.h"
#include "util/arg_parser.h"

using namespace osap;

namespace {

traces::DatasetId ParseDataset(const std::string& name) {
  for (traces::DatasetId id : traces::AllDatasetIds()) {
    if (traces::DatasetName(id) == name) return id;
  }
  std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string weights_path;
  std::string train_dataset;
  std::string test_dataset;
  bool safe = false;

  util::ArgParser parser("osap_eval",
                         "Evaluate a saved Pensieve agent (osap_train "
                         "output) on a dataset's held-out test split.");
  parser.AddPositional("weights.bin", "weight file from osap_train",
                       &weights_path);
  parser.AddPositional("train_dataset",
                       "distribution the agent was trained on (fits the "
                       "U_S detector under --safe)",
                       &train_dataset);
  parser.AddPositional("test_dataset", "dataset whose test split to stream",
                       &test_dataset);
  parser.AddFlag("--safe",
                 "wrap the agent in SafeAgent(Pensieve -> BufferBased, "
                 "NoveltyDetector)",
                 &safe);
  if (!parser.Parse(argc, argv)) parser.ExitWithError();
  if (parser.HelpRequested()) parser.ExitWithHelp();

  const std::filesystem::path weights = weights_path;
  const traces::DatasetId train_id = ParseDataset(train_dataset);
  const traces::DatasetId test_id = ParseDataset(test_dataset);

  abr::AbrEnvironmentConfig env_cfg;
  Rng init_rng(1);
  auto net = std::make_shared<nn::ActorCriticNet>(
      policies::MakePensieveActorCritic(env_cfg.layout, {}, init_rng));
  nn::LoadParamsFromFile(weights, net->AllParams());
  auto pensieve = std::make_shared<policies::PensievePolicy>(
      net, policies::ActionSelection::kGreedy, 0);

  const traces::Dataset test_ds = traces::BuildDataset(test_id);
  abr::AbrEnvironment env(abr::MakeEnvivioLikeVideo(5), env_cfg);

  std::shared_ptr<mdp::Policy> policy = pensieve;
  if (safe) {
    // Fit U_S on the agent's own training-distribution sessions.
    const traces::Dataset train_ds = traces::BuildDataset(train_id);
    core::NoveltyDetectorConfig nd_cfg;
    nd_cfg.k = traces::IsSyntheticIid(train_id) ? 30 : 5;
    auto detector =
        std::make_shared<core::NoveltyDetector>(nd_cfg, env_cfg.layout);
    std::vector<std::vector<double>> features;
    abr::AbrEnvironment fit_env(abr::MakeEnvivioLikeVideo(5), env_cfg);
    for (const traces::Trace& trace : train_ds.train) {
      fit_env.SetFixedTrace(trace);
      pensieve->Reset();
      std::vector<double> throughputs;
      mdp::State s = fit_env.Reset();
      bool done = false;
      while (!done) {
        mdp::StepResult r = fit_env.Step(pensieve->SelectAction(s));
        throughputs.push_back(fit_env.LastDownload().throughput_mbps);
        s = std::move(r.next_state);
        done = r.done;
      }
      for (auto& f :
           core::NoveltyDetector::ExtractFeatures(throughputs, nd_cfg)) {
        features.push_back(std::move(f));
      }
    }
    detector->Fit(features);
    std::printf("fitted OC-SVM on %zu features (%zu support vectors)\n",
                features.size(), detector->model().SupportVectorCount());

    core::SafeAgentConfig safe_cfg;
    safe_cfg.trigger.mode = core::TriggerMode::kBinary;
    safe_cfg.trigger.l = 3;
    policy = std::make_shared<core::SafeAgent>(
        pensieve,
        std::make_shared<policies::BufferBasedPolicy>(env.video(),
                                                      env_cfg.layout),
        detector, safe_cfg);
  }

  const core::EvalResult result =
      core::EvaluatePolicy(*policy, env, test_ds.test);
  const Summary s = result.Summarize();
  std::printf("%s on %s test split (%zu sessions):\n",
              safe ? "pensieve+ND" : "pensieve",
              traces::DatasetLabel(test_id).c_str(), s.count);
  std::printf("  QoE mean %.1f  median %.1f  min %.1f  max %.1f\n", s.mean,
              s.median, s.min, s.max);

  // Baseline anchors for context.
  policies::BufferBasedPolicy bb(env.video(), env_cfg.layout);
  policies::RandomPolicy random(env.ActionCount(), 99);
  std::printf("  buffer_based mean %.1f / random mean %.1f\n",
              core::EvaluatePolicy(bb, env, test_ds.test).MeanQoe(),
              core::EvaluatePolicy(random, env, test_ds.test).MeanQoe());
  return 0;
}
