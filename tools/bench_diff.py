#!/usr/bin/env python3
"""Compare a freshly generated BENCH_*.json sidecar against the committed
baseline and fail on regressions.

The micro-bench binaries (bench_hot_paths, bench_decision_latency,
bench_substrates) drop flat {"benchmark name": ns_per_op} maps into
their working directory; the repo commits blessed copies under
bench/baselines/. This script diffs the two so CI (or a human before
committing) can catch a hot-path regression without eyeballing console
tables:

    ./build/bench/bench_hot_paths      # writes ./BENCH_hot_paths.json
    tools/bench_diff.py BENCH_hot_paths.json

The baseline argument is optional: it defaults to the committed
bench/baselines/<basename of fresh> (resolved relative to the repo root,
so the two-argument form is only needed for ad-hoc A/B comparisons).

Exit status is nonzero when any benchmark present in BOTH files slowed
down by more than --threshold (default 25%). Added / removed benchmarks
are reported but never fail the diff - micro-bench sets are allowed to
evolve; their timings are not allowed to rot silently. Timings jitter
with machine load, so the default threshold is deliberately loose.
--fail-above expresses the same threshold as a percentage for automated
gates: the ctest perf smoke (`ctest -C perf -L perf`) runs each bench for
a fraction of a second and diffs the sidecar with --fail-above 400, so
only catastrophic regressions (an accidentally serialized parallel path,
a vectorized kernel falling back to scalar) fail the gate while ordinary
smoke-mode noise passes.

Benchmarks that got FASTER than the mirrored threshold are flagged as
improvements and summarized at the end: a large speedup either deserves a
refreshed baseline (so later regressions are judged against the new
normal) or indicates the benchmark no longer measures what it used to.
Improvements never affect the exit status.

Sidecars may also carry counter entries named "benchmark:counter" (e.g.
"BM_ServeServiceMemUs/100000/8:bytes_per_session"); those diff exactly
like timings (lower is better - the reporter deliberately excludes rate
counters) but are printed without the ns/op unit. --select RegEx
restricts the diff to matching entry names, so a gate can pin just the
memory counters of a combined sidecar.

The network-edge sidecar carries each benchmark twice, once per IO
backend ("BM_NetServeUs/epoll/64/1/1", ".../uring/64/1/1").
--only-backend FRESH[,BASELINE] keeps only the named backend's entries
on each side and strips the backend token so the keys align; with both
names it diffs one backend against the other (the uring >= epoll gate
passes the same sidecar as both files):

    tools/bench_diff.py BENCH_net.json BENCH_net.json \\
        --only-backend uring,epoll --fail-above 100

--skip-if-empty turns an empty fresh selection into success instead of
an error - on kernels that deny io_uring the uring points skip
themselves out of the sidecar, and the backend gate should pass
vacuously rather than fail.
"""

import argparse
import json
import os
import re
import sys


def load(path: str) -> dict:
    # Exit with a one-line error, never a traceback: this runs inside
    # ctest perf gates where "the sidecar is missing/garbage" is an
    # expected failure mode (bench binary crashed, wrong cwd), not a bug
    # in the diff tool. ValueError covers json.JSONDecodeError AND
    # UnicodeDecodeError (a non-UTF-8 byte stream fails in the codec
    # before the JSON parser ever runs).
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    if not isinstance(data, dict) or not all(
        isinstance(v, (int, float)) for v in data.values()
    ):
        sys.exit(f"bench_diff: {path} is not a flat name->ns_per_op map")
    return data


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two benchmark JSON sidecars; fail on regressions."
    )
    parser.add_argument("fresh", help="newly generated BENCH_*.json")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="baseline BENCH_*.json; default: the committed "
        "bench/baselines/<basename of fresh>",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fail when fresh > baseline * (1 + threshold); default 0.25",
    )
    parser.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="PCT",
        help="threshold expressed as a percentage (overrides --threshold): "
        "fail when fresh > baseline * (1 + PCT/100). Intended for automated "
        "gates - e.g. --fail-above 400 in the ctest perf smoke only fails on "
        "catastrophic regressions, since smoke-mode timings are noisy.",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="REGEX",
        help="only diff entries whose name matches REGEX (re.search); lets "
        "a gate pin a subset (e.g. ':(bytes_per_session|rss_mb)') of a "
        "combined sidecar",
    )
    parser.add_argument(
        "--only-backend",
        default=None,
        metavar="FRESH[,BASELINE]",
        help="keep only entries carrying the named backend token "
        "(/epoll/ or /uring/) and strip it so keys align; one name "
        "filters both sides, two comma-separated names diff FRESH's "
        "backend against BASELINE's (e.g. uring,epoll pins uring "
        "against epoll from the same sidecar)",
    )
    parser.add_argument(
        "--skip-if-empty",
        action="store_true",
        help="exit 0 when the fresh side has no entries after filtering "
        "(instead of the no-benchmarks-in-common error); for backend "
        "gates on kernels whose denied io_uring arm skipped itself out "
        "of the sidecar",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the available entry names (after --select filtering) "
        "of the fresh sidecar and the baseline instead of diffing; handy "
        "for composing --select patterns against a combined sidecar",
    )
    args = parser.parse_args()
    if args.fail_above is not None:
        if args.fail_above < 0:
            sys.exit("bench_diff: --fail-above must be >= 0")
        args.threshold = args.fail_above / 100.0
    if args.threshold < 0:
        sys.exit("bench_diff: --threshold must be >= 0")

    if args.baseline is None:
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        args.baseline = os.path.join(
            repo, "bench", "baselines", os.path.basename(args.fresh)
        )
        print(f"bench_diff: baseline {args.baseline}")

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    if args.select is not None:
        try:
            pattern = re.compile(args.select)
        except re.error as e:
            sys.exit(f"bench_diff: bad --select regex: {e}")
        fresh = {k: v for k, v in fresh.items() if pattern.search(k)}
        baseline = {k: v for k, v in baseline.items() if pattern.search(k)}

    if args.only_backend is not None:
        names = args.only_backend.split(",")
        if len(names) > 2 or not all(names):
            sys.exit("bench_diff: --only-backend wants FRESH[,BASELINE]")

        def pick(entries: dict, backend: str) -> dict:
            # Strip the backend token from the kept keys so epoll and
            # uring rows of the same grid point compare under one name.
            token = f"/{backend}/"
            return {
                k.replace(token, "/", 1): v
                for k, v in entries.items()
                if token in k
            }

        fresh = pick(fresh, names[0])
        baseline = pick(baseline, names[-1])

    if args.skip_if_empty and not fresh:
        print("bench_diff: nothing selected on the fresh side; skipping "
              "(--skip-if-empty)")
        return 0

    if args.list:
        # Enumeration mode: show what a gate's --select would see. Never
        # fails - an empty selection is exactly what the caller is
        # debugging.
        for label, entries in (("fresh", fresh), ("baseline", baseline)):
            print(f"{label}: {len(entries)} entr"
                  f"{'y' if len(entries) == 1 else 'ies'}")
            for name in sorted(entries):
                print(f"  {name}")
        return 0

    common = sorted(fresh.keys() & baseline.keys())
    added = sorted(fresh.keys() - baseline.keys())
    removed = sorted(baseline.keys() - fresh.keys())

    regressions = []
    improvements = []
    width = max((len(n) for n in common), default=0)
    # Timing entries are ns/op; "benchmark:counter" entries are raw counter
    # values and carry no unit.
    def unit(name: str) -> str:
        return "" if ":" in name else " ns/op"

    for name in common:
        old, new = baseline[name], fresh[name]
        ratio = new / old if old > 0 else float("inf") if new > 0 else 1.0
        flag = ""
        if ratio > 1.0 + args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, old, new, ratio))
        elif ratio < 1.0 / (1.0 + args.threshold):
            flag = "  improved"
            improvements.append((name, old, new, ratio))
        print(f"{name:<{width}}  {old:>14.1f} -> {new:>14.1f}{unit(name)} "
              f"({ratio:>6.2f}x){flag}")

    for name in added:
        print(f"{name}: added ({fresh[name]:.1f}{unit(name)})")
    for name in removed:
        print(f"{name}: removed (was {baseline[name]:.1f}{unit(name)})")

    if not common:
        sys.exit("bench_diff: no benchmarks in common - wrong file pair "
                 "or over-tight --select?")

    if improvements:
        print(f"\n{len(improvements)} improvement(s) beyond "
              f"{args.threshold:.0%} (consider refreshing the baseline):")
        for name, old, new, ratio in improvements:
            print(f"  {name}: {old:.1f} -> {new:.1f}{unit(name)} "
                  f"({old / new:.2f}x faster)")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, old, new, ratio in regressions:
            print(f"  {name}: {old:.1f} -> {new:.1f}{unit(name)} "
                  f"({ratio:.2f}x)", file=sys.stderr)
        return 1
    print(f"\nOK: {len(common)} benchmarks within {args.threshold:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
